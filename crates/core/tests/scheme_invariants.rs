//! Cross-scheme invariants, driven by the registry: every scheme family in
//! [`registry::ALL_SPECS`] is placed on every named topology at the paper's
//! standard 0.7 min-cut operating point and held to the properties the
//! figures rely on. A scheme added to the registry is picked up — and
//! tested — for free.

use lowlat_core::eval::PlacementEval;
use lowlat_core::failure::{partition_routable, single_link_failures};
use lowlat_core::pathset::PathCache;
use lowlat_core::scale::min_cut_load_with_cache;
use lowlat_core::schemes::{registry, SchemeError, SolveContext};
use lowlat_netgraph::FailureMask;
use lowlat_tmgen::{GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

/// The link-based MCF baseline is O(pops²) LP rows (Figure 15's point);
/// keep it to the small networks so the suite stays CI-sized.
const LINK_BASED_POP_CAP: usize = 15;

/// The exhaustive failure suite multiplies the corpus by its cable count;
/// the iterative-LP schemes only run it on networks this small so the
/// suite stays CI-sized (the cheap combinatorial schemes run everywhere).
const FAILURE_LP_POP_CAP: usize = 15;

fn named_corpus() -> Vec<Topology> {
    vec![
        named::abilene(),
        named::nsfnet(),
        named::geant_like(),
        named::gts_like(),
        named::cogent_like(),
        named::google_like(),
    ]
}

/// A gravity matrix scaled to 0.7 min-cut load, sharing `cache`.
fn standard_tm(topo: &Topology, cache: &PathCache<'_>) -> TrafficMatrix {
    let raw = GravityTmGen::new(TmGenConfig::default()).generate(topo, 0);
    let u0 = min_cut_load_with_cache(cache, &raw).expect("min-cut LP");
    assert!(u0 > 0.0, "{}: empty matrix", topo.name());
    raw.scaled(0.7 / u0)
}

#[test]
fn every_registry_scheme_satisfies_the_placement_invariants() {
    for topo in named_corpus() {
        let cache = PathCache::new(topo.graph());
        let tm = standard_tm(&topo, &cache);
        for &spec in registry::ALL_SPECS {
            if spec == "LinkBased" && topo.pop_count() > LINK_BASED_POP_CAP {
                continue;
            }
            let scheme = registry::build(spec).expect("registry spec");
            let placement = scheme
                .place(&cache, &tm)
                .unwrap_or_else(|e| panic!("{spec} failed on {}: {e}", topo.name()));
            placement
                .validate(topo.graph(), &tm)
                .unwrap_or_else(|e| panic!("{spec} invalid on {}: {e}", topo.name()));
            let ev = PlacementEval::evaluate(&topo, &tm, &placement);
            let ctx = format!("{spec} on {}", topo.name());
            assert!(
                ev.latency_stretch() >= 1.0 - 1e-6,
                "{ctx}: stretch {} below 1",
                ev.latency_stretch()
            );
            assert!(
                ev.max_flow_stretch() >= 1.0 - 1e-6,
                "{ctx}: max stretch {} below 1",
                ev.max_flow_stretch()
            );
            assert!(ev.max_utilization().is_finite(), "{ctx}: non-finite utilization");
            match spec {
                // Single shortest paths by construction: zero stretch.
                "SP" => assert!(
                    (ev.latency_stretch() - 1.0).abs() < 1e-9,
                    "{ctx}: SP stretch {} != 1",
                    ev.latency_stretch()
                ),
                // At 0.7 min-cut load the capacity-optimal and the
                // latency-optimal LPs must both fit (Figure 4a/4c).
                "MinMax" | "LatOpt" => assert!(
                    ev.fits(),
                    "{ctx}: must fit at 0.7 min-cut load (util {})",
                    ev.max_utilization()
                ),
                _ => {}
            }
        }
    }
}

#[test]
fn registry_schemes_survive_every_single_cable_failure() {
    // The failure axis of the invariant suite: every scheme family placed
    // under every single-cable failure of every named topology, through
    // the *same* repaired cache and warm LP context (the recovery path the
    // failure sweep drives). Disconnected pairs are dropped, not fatal.
    let lp_specs = ["MinMax", "MinMaxK10", "LatOpt", "LDR", "LinkBased"];
    for topo in named_corpus() {
        let graph = topo.graph();
        let cache = PathCache::new(graph);
        let tm = standard_tm(&topo, &cache);
        let specs: Vec<&str> = registry::ALL_SPECS
            .iter()
            .copied()
            .filter(|s| topo.pop_count() <= FAILURE_LP_POP_CAP || !lp_specs.contains(s))
            .collect();
        // One warm context per scheme, carried across scenarios — recovery
        // re-places must warm-start, never change results.
        let mut ctxs: Vec<SolveContext> = specs.iter().map(|_| SolveContext::new()).collect();
        let mut total_kept = 0usize;
        let mut total_repaired = 0usize;
        for scenario in single_link_failures(&topo) {
            cache.clear_failure();
            let mask = scenario.mask(&topo);
            let stats = cache.apply_failure(&mask);
            total_kept += stats.kept_pairs;
            total_repaired += stats.repaired_pairs;
            let part = partition_routable(graph, &tm, &mask);
            for (spec, ctx) in specs.iter().zip(&mut ctxs) {
                let scheme = registry::build(spec).expect("registry spec");
                let placement = match scheme.place_with_context(&cache, &part.tm, ctx) {
                    Ok(p) => p,
                    // The link-based MCF has no overload variables: a
                    // failure that pushes demand past capacity is reported
                    // as infeasible, which is its documented contract.
                    Err(SchemeError::Infeasible) if *spec == "LinkBased" => continue,
                    Err(e) => {
                        panic!("{spec} failed under {} on {}: {e}", scenario.name, topo.name())
                    }
                };
                let ctx_label = format!("{spec} under {} on {}", scenario.name, topo.name());
                placement
                    .validate(graph, &part.tm)
                    .unwrap_or_else(|e| panic!("{ctx_label}: invalid placement: {e}"));
                for (i, pl) in placement.per_aggregate().iter().enumerate() {
                    for (path, x) in &pl.splits {
                        assert!(
                            *x <= 1e-9 || !mask.hits_path(graph, path),
                            "{ctx_label}: aggregate {i} routed over the failed cable"
                        );
                    }
                }
            }
        }
        // Across the whole sweep, repair must both keep and rebuild pairs —
        // all-kept would mean failures never hit cached paths, all-rebuilt
        // would mean repair degenerated to a full rebuild.
        assert!(total_kept > 0, "{}: repair never kept a pair", topo.name());
        assert!(total_repaired > 0, "{}: no failure touched a cached path", topo.name());
        cache.clear_failure();
    }
}

#[test]
fn registry_schemes_respect_effective_capacities_under_brownouts() {
    // The brown-out axis: degrade every cable to half capacity (a
    // degradation-only mask — nothing down, no path changes) and scale the
    // demand by the same factor. By linearity this is exactly the intact
    // 0.7 min-cut instance with halved capacities, so every scheme that
    // fits intact must fit against *effective* capacities here — which it
    // can only do if its capacity constraints actually see the mask.
    let factor = 0.5;
    let lp_specs = ["MinMax", "MinMaxK10", "LatOpt", "LDR", "LinkBased"];
    // The schemes whose feasibility the linearity argument guarantees (LDR
    // fits too: 0.35 effective load under its 10% static headroom).
    let must_fit = ["MinMax", "LatOpt", "LDR"];
    for topo in named_corpus() {
        let graph = topo.graph();
        let cache = PathCache::new(graph);
        let tm = standard_tm(&topo, &cache).scaled(factor);
        let mut mask = FailureMask::new();
        for c in topo.cables() {
            mask.degrade_cable(graph, c, factor);
        }
        assert!(!mask.affects_routing(), "brown-outs change no paths");
        let stats = cache.apply_failure(&mask);
        assert_eq!(stats.repaired_pairs, 0, "{}: degradation-only repair is free", topo.name());
        let eff: Vec<f64> = cache.effective_capacities();
        for &spec in registry::ALL_SPECS {
            if lp_specs.contains(&spec) && topo.pop_count() > FAILURE_LP_POP_CAP {
                continue;
            }
            let scheme = registry::build(spec).expect("registry spec");
            let placement = match scheme.place(&cache, &tm) {
                Ok(p) => p,
                Err(SchemeError::Infeasible) if spec == "LinkBased" => continue,
                Err(e) => panic!("{spec} failed under brown-out on {}: {e}", topo.name()),
            };
            placement
                .validate(graph, &tm)
                .unwrap_or_else(|e| panic!("{spec} invalid on {}: {e}", topo.name()));
            if must_fit.contains(&spec) || spec == "LinkBased" {
                let loads = placement.link_loads(graph, &tm);
                for l in graph.link_ids() {
                    assert!(
                        loads[l.idx()] <= eff[l.idx()] * (1.0 + 1e-6) + 1e-9,
                        "{spec} on {}: link {} loaded {} over effective capacity {} \
                         (raw {}) — the scheme routed over phantom capacity",
                        topo.name(),
                        l.0,
                        loads[l.idx()],
                        eff[l.idx()],
                        graph.link(l).capacity_mbps,
                    );
                }
            }
        }
        // The literal "LP reports feasible": the latency-optimal LP must
        // find a zero-overload placement against the effective capacities.
        if topo.pop_count() <= FAILURE_LP_POP_CAP {
            let out = lowlat_core::pathgrow::GrowRequest::new(&cache, &tm)
                .solve()
                .expect("LatOpt under brown-out");
            assert!(
                out.omax <= 1e-7,
                "{}: LatOpt reports overload {} under a fitting brown-out",
                topo.name(),
                out.omax
            );
        }
        cache.clear_failure();
    }
}

#[test]
fn registry_schemes_reuse_the_shared_cache() {
    // Placing through a shared cache must agree with placing through a
    // fresh one — the engine's cache sharing cannot change results.
    let topo = named::abilene();
    let shared = PathCache::new(topo.graph());
    let tm = standard_tm(&topo, &shared);
    for &spec in registry::ALL_SPECS {
        let scheme = registry::build(spec).expect("registry spec");
        let warm = scheme.place(&shared, &tm).expect("warm placement");
        let cold = scheme.place_on(&topo, &tm).expect("cold placement");
        let ev_warm = PlacementEval::evaluate(&topo, &tm, &warm);
        let ev_cold = PlacementEval::evaluate(&topo, &tm, &cold);
        assert!(
            (ev_warm.latency_stretch() - ev_cold.latency_stretch()).abs() < 1e-9
                && (ev_warm.max_utilization() - ev_cold.max_utilization()).abs() < 1e-9,
            "{spec}: warm/cold divergence"
        );
    }
}
