//! Cross-scheme invariants, driven by the registry: every scheme family in
//! [`registry::ALL_SPECS`] is placed on every named topology at the paper's
//! standard 0.7 min-cut operating point and held to the properties the
//! figures rely on. A scheme added to the registry is picked up — and
//! tested — for free.

use lowlat_core::eval::PlacementEval;
use lowlat_core::pathset::PathCache;
use lowlat_core::scale::min_cut_load_with_cache;
use lowlat_core::schemes::registry;
use lowlat_tmgen::{GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

/// The link-based MCF baseline is O(pops²) LP rows (Figure 15's point);
/// keep it to the small networks so the suite stays CI-sized.
const LINK_BASED_POP_CAP: usize = 15;

fn named_corpus() -> Vec<Topology> {
    vec![
        named::abilene(),
        named::nsfnet(),
        named::geant_like(),
        named::gts_like(),
        named::cogent_like(),
        named::google_like(),
    ]
}

/// A gravity matrix scaled to 0.7 min-cut load, sharing `cache`.
fn standard_tm(topo: &Topology, cache: &PathCache<'_>) -> TrafficMatrix {
    let raw = GravityTmGen::new(TmGenConfig::default()).generate(topo, 0);
    let u0 = min_cut_load_with_cache(cache, &raw).expect("min-cut LP");
    assert!(u0 > 0.0, "{}: empty matrix", topo.name());
    raw.scaled(0.7 / u0)
}

#[test]
fn every_registry_scheme_satisfies_the_placement_invariants() {
    for topo in named_corpus() {
        let cache = PathCache::new(topo.graph());
        let tm = standard_tm(&topo, &cache);
        for &spec in registry::ALL_SPECS {
            if spec == "LinkBased" && topo.pop_count() > LINK_BASED_POP_CAP {
                continue;
            }
            let scheme = registry::build(spec).expect("registry spec");
            let placement = scheme
                .place(&cache, &tm)
                .unwrap_or_else(|e| panic!("{spec} failed on {}: {e}", topo.name()));
            placement
                .validate(topo.graph(), &tm)
                .unwrap_or_else(|e| panic!("{spec} invalid on {}: {e}", topo.name()));
            let ev = PlacementEval::evaluate(&topo, &tm, &placement);
            let ctx = format!("{spec} on {}", topo.name());
            assert!(
                ev.latency_stretch() >= 1.0 - 1e-6,
                "{ctx}: stretch {} below 1",
                ev.latency_stretch()
            );
            assert!(
                ev.max_flow_stretch() >= 1.0 - 1e-6,
                "{ctx}: max stretch {} below 1",
                ev.max_flow_stretch()
            );
            assert!(ev.max_utilization().is_finite(), "{ctx}: non-finite utilization");
            match spec {
                // Single shortest paths by construction: zero stretch.
                "SP" => assert!(
                    (ev.latency_stretch() - 1.0).abs() < 1e-9,
                    "{ctx}: SP stretch {} != 1",
                    ev.latency_stretch()
                ),
                // At 0.7 min-cut load the capacity-optimal and the
                // latency-optimal LPs must both fit (Figure 4a/4c).
                "MinMax" | "LatOpt" => assert!(
                    ev.fits(),
                    "{ctx}: must fit at 0.7 min-cut load (util {})",
                    ev.max_utilization()
                ),
                _ => {}
            }
        }
    }
}

#[test]
fn registry_schemes_reuse_the_shared_cache() {
    // Placing through a shared cache must agree with placing through a
    // fresh one — the engine's cache sharing cannot change results.
    let topo = named::abilene();
    let shared = PathCache::new(topo.graph());
    let tm = standard_tm(&topo, &shared);
    for &spec in registry::ALL_SPECS {
        let scheme = registry::build(spec).expect("registry spec");
        let warm = scheme.place(&shared, &tm).expect("warm placement");
        let cold = scheme.place_on(&topo, &tm).expect("cold placement");
        let ev_warm = PlacementEval::evaluate(&topo, &tm, &warm);
        let ev_cold = PlacementEval::evaluate(&topo, &tm, &cold);
        assert!(
            (ev_warm.latency_stretch() - ev_cold.latency_stretch()).abs() < 1e-9
                && (ev_warm.max_utilization() - ev_cold.max_utilization()).abs() < 1e-9,
            "{spec}: warm/cold divergence"
        );
    }
}
