//! Golden regression values for the paper's headline metric.
//!
//! `LlpdAnalysis::compute` on the named topologies is fully deterministic,
//! so its output is pinned here exactly: LLPD is the fraction of PoP pairs
//! whose APA clears the default 0.7 threshold, making `llpd * pairs` an
//! integer count we can assert without tolerance games. If a refactor moves
//! any of these numbers, it changed the metric, not just the code — update
//! the constants only with an explanation of why the new values are more
//! faithful to the paper.

use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

struct Golden {
    name: &'static str,
    build: fn() -> Topology,
    /// Unordered PoP pairs (n choose 2).
    pairs: usize,
    /// Pairs with APA >= 0.7, i.e. `llpd * pairs`.
    pairs_above_threshold: usize,
    /// Mean APA across all pairs.
    mean_apa: f64,
}

const GOLDEN: [Golden; 4] = [
    Golden {
        name: "abilene",
        build: named::abilene,
        pairs: 55,
        pairs_above_threshold: 21,
        mean_apa: 0.447_878_787_878_788,
    },
    Golden {
        name: "gts_like",
        build: named::gts_like,
        pairs: 325,
        pairs_above_threshold: 142,
        mean_apa: 0.543_025_641_025_641,
    },
    Golden {
        name: "cogent_like",
        build: named::cogent_like,
        pairs: 325,
        pairs_above_threshold: 224,
        mean_apa: 0.739_692_307_692_308,
    },
    Golden {
        name: "google_like",
        build: named::google_like,
        pairs: 153,
        pairs_above_threshold: 118,
        mean_apa: 0.810_457_516_339_869,
    },
];

#[test]
fn named_topology_llpd_matches_golden_values() {
    for g in &GOLDEN {
        let topo = (g.build)();
        let analysis = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
        let apa = analysis.apa_values();
        assert_eq!(apa.len(), g.pairs, "{}: pair count drifted", g.name);
        let above = apa.iter().filter(|&&a| a >= 0.7).count();
        assert_eq!(above, g.pairs_above_threshold, "{}: APA threshold count drifted", g.name);
        let expect_llpd = g.pairs_above_threshold as f64 / g.pairs as f64;
        assert!(
            (analysis.llpd() - expect_llpd).abs() < 1e-12,
            "{}: llpd {} != {}/{}",
            g.name,
            analysis.llpd(),
            g.pairs_above_threshold,
            g.pairs
        );
        let mean: f64 = apa.iter().sum::<f64>() / apa.len() as f64;
        assert!(
            (mean - g.mean_apa).abs() < 1e-12,
            "{}: mean APA {mean:.15} != {:.15}",
            g.name,
            g.mean_apa
        );
    }
}

#[test]
fn llpd_is_stable_across_recomputation() {
    // The analysis must be a pure function of (topology, config): recompute
    // and compare bit-for-bit, guarding against latent iteration-order or
    // caching nondeterminism sneaking into the metric.
    let topo = named::gts_like();
    let a = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
    let b = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
    assert_eq!(a.llpd().to_bits(), b.llpd().to_bits());
    for (x, y) in a.apa_values().iter().zip(b.apa_values()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
