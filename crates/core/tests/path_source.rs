//! The `PathSource` acceptance suite: the flat [`PathCache`] and the
//! hierarchical [`PartitionedPathEngine`] must be interchangeable behind
//! `&dyn PathSource`, and column-generated placements through the engine
//! must match flat-cache placements on the named corpus.
//!
//! * a trait-object smoke proving every registry scheme runs unchanged on
//!   either backend through the same `&dyn PathSource`;
//! * a proptest pinning the column-generated LatOpt and MinMax objectives
//!   against the flat cache within 1e-6 across seeds and load levels (the
//!   named corpus fits one leaf, so the engine's scoped Yen is the flat
//!   Yen and any drift is a pricing bug);
//! * a mid-size multi-leaf synthetic where every LP scheme places through
//!   the engine without materializing per-pair state for the cross-leaf
//!   corpus.

use proptest::prelude::*;

use lowlat_core::hier::{EngineConfig, PartitionedPathEngine};
use lowlat_core::pathgrow::GrowRequest;
use lowlat_core::pathset::PathCache;
use lowlat_core::placement::Placement;
use lowlat_core::scale::ScaleToLoad;
use lowlat_core::schemes::registry;
use lowlat_core::PathSource;
use lowlat_netgraph::{Graph, HierarchyConfig, NodeId};
use lowlat_tmgen::{Aggregate, GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::synth::{generate, SynthConfig, SynthModel};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

/// The Figure-12 objective of a placement: flow-count-weighted total mean
/// delay. Both backends must land on the same optimum.
fn objective(tm: &TrafficMatrix, placement: &Placement) -> f64 {
    tm.aggregates()
        .iter()
        .enumerate()
        .map(|(a, agg)| agg.flow_count as f64 * placement.aggregate(a).mean_delay_ms())
        .sum()
}

/// Loads must respect effective capacities up to the reported overload.
fn assert_respects_capacities(graph: &Graph, tm: &TrafficMatrix, placement: &Placement, omax: f64) {
    let loads = placement.link_loads(graph, tm);
    for l in graph.link_ids() {
        let cap = graph.link(l).capacity_mbps;
        assert!(
            loads[l.idx()] <= cap * (1.0 + omax + 1e-6) + 1e-9,
            "link {} loaded {} over cap {} (omax {})",
            l.0,
            loads[l.idx()],
            cap,
            omax,
        );
    }
}

#[test]
fn backends_are_interchangeable_through_the_trait_object() {
    let topo = named::abilene();
    let graph = topo.graph();
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 7).scaled_to_load(&topo, 0.7);

    let cache = PathCache::new(graph);
    let engine = PartitionedPathEngine::build(graph, &EngineConfig::default());
    let sources: Vec<(&str, &dyn PathSource)> = vec![("flat", &cache), ("partitioned", &engine)];

    for &spec in registry::ALL_SPECS {
        let scheme = registry::build(spec).expect("registry spec");
        let mut placements = Vec::new();
        for (label, source) in &sources {
            // The whole scheme surface runs through the trait object: the
            // graph view, the pricing calls, the capacity view.
            assert_eq!(source.graph().node_count(), graph.node_count());
            assert!(source.failure_mask().is_none());
            let placement =
                scheme.place(*source, &tm).unwrap_or_else(|e| panic!("{spec} via {label}: {e}"));
            placement.validate(graph, &tm).unwrap_or_else(|e| panic!("{spec} via {label}: {e:?}"));
            placements.push(placement);
        }
        // Abilene fits in one leaf, so the two backends see identical path
        // sets: every scheme must produce the same objective either way.
        let (flat, part) = (&placements[0], &placements[1]);
        let (of, op) = (objective(&tm, flat), objective(&tm, part));
        assert!(
            (of - op).abs() <= 1e-6 * of.max(1.0),
            "{spec}: flat objective {of} vs partitioned {op}"
        );
    }

    // The capacity-provider view agrees too.
    assert_eq!(cache.effective_capacities(), engine.effective_capacities());
    // Bounds: the flat cache reports the exact shortest delay; the engine
    // may only report a valid upper bound for it.
    for (s, d) in [(NodeId(0), NodeId(10)), (NodeId(3), NodeId(7))] {
        let exact = (&cache as &dyn PathSource).shortest_delay_bound(s, d);
        let bound = (&engine as &dyn PathSource).shortest_delay_bound(s, d);
        assert!(exact.is_finite());
        assert!(bound >= exact - 1e-9, "bound {bound} below exact {exact}");
    }
}

fn named_topo(idx: usize) -> Topology {
    match idx {
        0 => named::abilene(),
        _ => named::gts_like(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Column generation through the partitioned engine lands on the flat
    /// cache's optimum on the named corpus: same objective, same overload,
    /// capacities respected — across matrices, seeds and load levels.
    #[test]
    fn column_generation_matches_flat_cache(
        topo_idx in 0usize..2,
        seed in 0u64..32,
        load in 0.45f64..0.85,
    ) {
        let topo = named_topo(topo_idx);
        let graph = topo.graph();
        let tm = GravityTmGen::new(TmGenConfig::default())
            .generate(&topo, seed)
            .scaled_to_load(&topo, load);

        let cache = PathCache::new(graph);
        let engine = PartitionedPathEngine::build(graph, &EngineConfig::default());

        for minmax in [false, true] {
            let run = |source: &dyn PathSource| {
                let req = GrowRequest::new(source, &tm);
                let req = if minmax { req.minmax(None) } else { req };
                req.solve().expect("LP solvable")
            };
            let flat = run(&cache);
            let part = run(&engine);
            let (of, op) = (objective(&tm, &flat.placement), objective(&tm, &part.placement));
            prop_assert!(
                (of - op).abs() <= 1e-6 * of.max(1.0),
                "minmax={}: flat objective {} vs partitioned {}", minmax, of, op
            );
            prop_assert!(
                (flat.omax - part.omax).abs() <= 1e-6,
                "minmax={}: flat omax {} vs partitioned {}", minmax, flat.omax, part.omax
            );
            assert_respects_capacities(graph, &tm, &part.placement, part.omax);
        }
    }
}

#[test]
fn lp_schemes_place_through_a_multi_leaf_engine_without_flat_state() {
    // A genuinely partitioned graph: ~600 BA nodes under the default leaf
    // size split into several leaves, so the matrix below is dominated by
    // cross-leaf pairs that must be priced by landmark stitching alone.
    let ingested = generate(
        SynthModel::BarabasiAlbert,
        &SynthConfig { nodes: 600, seed: 42, ..Default::default() },
    );
    let graph = ingested.graph();
    let engine = PartitionedPathEngine::build(
        graph,
        &EngineConfig {
            hierarchy: HierarchyConfig { max_depth: 3, max_leaf: 96, branching: 8 },
            landmarks: 24,
        },
    );
    assert!(engine.leaf_ids().len() > 1, "graph must split into leaves");

    let n = graph.node_count() as u32;
    let aggs: Vec<Aggregate> = (0..24u32)
        .map(|i| Aggregate {
            src: NodeId((i * 997) % n),
            dst: NodeId((i * 313 + n / 2) % n),
            volume_mbps: 200.0 + 40.0 * i as f64,
            flow_count: 8,
        })
        .filter(|a| a.src != a.dst)
        .collect();
    let tm = TrafficMatrix::new(aggs);

    for spec in ["LatOpt", "LDR", "MinMax", "MinMaxK10"] {
        let scheme = registry::build(spec).expect("registry spec");
        let placement = scheme.place(&engine, &tm).unwrap_or_else(|e| panic!("{spec}: {e}"));
        placement.validate(graph, &tm).unwrap_or_else(|e| panic!("{spec}: {e:?}"));
    }
    // The "never the flat corpus" guarantee: per-pair state exists at most
    // for the intra-leaf pairs the pricer actually touched — bounded by the
    // matrix, nowhere near the n^2 corpus.
    assert!(
        engine.cached_pairs() <= tm.aggregates().len(),
        "cached {} pairs for a {}-aggregate matrix",
        engine.cached_pairs(),
        tm.aggregates().len(),
    );
}
