//! Cross-checks the APA computation against an independent oracle: bridge
//! detection. A cable that is a bridge can never be routed around, so every
//! shortest path crossing it must lose APA credit for that hop — whatever
//! the stretch limit or capacities.

use proptest::prelude::*;

use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_netgraph::bridges;
use lowlat_topology::{zoo, GeoPoint, Topology, TopologyBuilder};

/// Random sparse topology with guaranteed bridges: a backbone ring plus
/// pendant chains hanging off it.
fn arb_topology_with_pendants() -> impl Strategy<Value = Topology> {
    (4usize..=7, 1usize..=3, any::<u64>()).prop_map(|(ring_n, pendants, seed)| {
        let mut b = TopologyBuilder::new("pendant");
        let ring: Vec<_> = (0..ring_n)
            .map(|i| {
                let ang = 2.0 * std::f64::consts::PI * i as f64 / ring_n as f64;
                b.add_pop(
                    format!("r{i}"),
                    GeoPoint::new(45.0 + 4.0 * ang.sin(), -100.0 + 5.0 * ang.cos()),
                )
            })
            .collect();
        for i in 0..ring_n {
            b.connect(ring[i], ring[(i + 1) % ring_n], 10_000.0);
        }
        for j in 0..pendants {
            let attach = ring[(seed as usize + j * 3) % ring_n];
            let p =
                b.add_pop(format!("p{j}"), GeoPoint::new(45.0 + 6.0 + j as f64, -100.0 + j as f64));
            b.connect(attach, p, 10_000.0); // pendant cable = bridge
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pairs_crossing_bridges_lose_apa_credit(topo in arb_topology_with_pendants()) {
        let graph = topo.graph();
        let bridge_set: std::collections::HashSet<u32> = bridges(graph)
            .into_iter()
            .flat_map(|l| [l.0, topo.reverse_link(l).0])
            .collect();
        prop_assume!(!bridge_set.is_empty());
        let analysis = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
        for ((s, d), &apa) in topo.unordered_pairs().iter().zip(analysis.apa_values()) {
            let sp = lowlat_netgraph::shortest_path(graph, *s, *d, None, None).unwrap();
            let bridge_hops =
                sp.links().iter().filter(|l| bridge_set.contains(&l.0)).count();
            let max_apa = 1.0 - bridge_hops as f64 / sp.links().len() as f64;
            prop_assert!(
                apa <= max_apa + 1e-9,
                "pair {s:?}-{d:?}: APA {apa} exceeds bridge bound {max_apa} \
                 ({bridge_hops} bridges on {} hops)",
                sp.links().len()
            );
        }
    }

    #[test]
    fn bridgeless_2_connected_graphs_have_positive_apa_somewhere(seed in any::<u64>()) {
        // A chorded ring is 2-edge-connected: no bridges; with a generous
        // stretch limit every link can be routed around in principle, so at
        // least the best-served pair must have APA > 0.
        let topo = zoo::ring(8, 2, zoo::EUROPE, seed % 512);
        prop_assume!(bridges(topo.graph()).is_empty());
        let generous = LlpdConfig { stretch_limit: 50.0, ..Default::default() };
        let analysis = LlpdAnalysis::compute(&topo, &generous);
        let best = analysis.apa_values().iter().cloned().fold(0.0, f64::max);
        prop_assert!(best > 0.0, "2-edge-connected graph with zero APA everywhere");
    }

    #[test]
    fn trees_are_all_bridges_and_zero_apa(n in 4usize..12, seed in any::<u64>()) {
        let topo = zoo::tree(n, 0.4, zoo::USA, seed % 512);
        // Every cable of a tree is a bridge...
        prop_assert_eq!(bridges(topo.graph()).len(), topo.cables().len());
        // ...so APA is zero for every pair, under any stretch limit.
        let generous = LlpdConfig { stretch_limit: 100.0, ..Default::default() };
        let analysis = LlpdAnalysis::compute(&topo, &generous);
        prop_assert!(analysis.apa_values().iter().all(|&a| a == 0.0));
        prop_assert_eq!(analysis.llpd(), 0.0);
    }
}
