//! # lowlat-linprog
//!
//! A self-contained linear-program solver: two-phase **revised simplex** with
//! sparse constraint columns and a dense, column-major basis inverse.
//!
//! The paper solves path-based multi-commodity-flow LPs (Figure 12) whose
//! row counts stay small because the path set is grown lazily (Figure 13) —
//! typically a few hundred to a few thousand rows. A dense basis inverse is
//! the right tool at that scale: simple, predictable, and fast enough that
//! "the bottleneck is not the linear optimizer, but the k shortest paths
//! algorithm" (paper §5), which our Figure-15 reproduction confirms.
//!
//! ## Scope
//!
//! * minimize `c·x` subject to `Ax {<=,==,>=} b`, `x >= 0`
//! * detects infeasibility and unboundedness
//! * Dantzig pricing with an automatic switch to Bland's rule when
//!   degeneracy stalls progress (guaranteeing termination)
//! * periodic refactorization of the basis inverse for numerical hygiene
//! * **warm starts**: [`Problem::solve_warm`] re-optimizes from the
//!   [`Basis`] a previous solve exported — the §5 minute-by-minute
//!   deployment cycle poses nearly identical LPs, and restarting from the
//!   previous optimal vertex skips phase 1 and most pivots. Stale bases
//!   (wrong shape, singular, infeasible under the new data) fall back to a
//!   cold solve automatically.
//!
//! Not implemented (not needed by this workspace): general variable bounds
//! (shift/negate at the call site), sparse LU factorization, dual simplex,
//! presolve. Callers with upper-bounded variables add explicit rows.
//!
//! ```
//! use lowlat_linprog::{Problem, Relation};
//!
//! // min -x - 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0  => optimum at (1,3)
//! let mut p = Problem::minimize(2);
//! p.set_objective(0, -1.0);
//! p.set_objective(1, -2.0);
//! p.add_row(Relation::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
//! p.add_row(Relation::Le, 3.0, &[(1, 1.0)]);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective() - (-7.0)).abs() < 1e-9);
//! assert!((sol.value(0) - 1.0).abs() < 1e-9);
//! assert!((sol.value(1) - 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{Problem, Relation, RowId};
pub use simplex::{Basis, LpError, Solution, SolverOptions};
