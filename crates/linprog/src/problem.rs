//! Problem construction API.

use crate::simplex::{
    solve_standard_form, solve_standard_form_warm, Basis, LpError, Solution, SolverOptions,
    StandardForm,
};

/// Relation of a constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `>=`
    Ge,
}

/// Identifier of a constraint row, returned by [`Problem::add_row`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowId(pub usize);

struct Row {
    coeffs: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// A linear program `min c·x  s.t.  Ax {<=,==,>=} b,  0 <= x <= u`.
///
/// Variables are indexed `0..num_vars`, implicitly non-negative, and may
/// carry an upper bound (handled natively by the simplex, not as a row —
/// important for problems with one cap per variable, like the paper's
/// locality-redistribution LP).
pub struct Problem {
    num_vars: usize,
    objective: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<Row>,
}

impl Problem {
    /// Creates a minimization problem over `num_vars` non-negative variables
    /// with an all-zero objective and no upper bounds.
    pub fn minimize(num_vars: usize) -> Self {
        Problem {
            num_vars,
            objective: vec![0.0; num_vars],
            upper: vec![f64::INFINITY; num_vars],
            rows: Vec::new(),
        }
    }

    /// Bounds variable `var` from above: `x_var <= upper`.
    ///
    /// # Panics
    /// Panics on out-of-range `var`, or a negative or NaN bound.
    pub fn set_upper_bound(&mut self, var: usize, upper: f64) {
        assert!(var < self.num_vars, "bound var {var} out of range");
        assert!(!upper.is_nan() && upper >= 0.0, "bad upper bound {upper}");
        self.upper[var] = upper;
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows added so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `var` (adds to any previous
    /// value so composite objectives can be accumulated term by term).
    ///
    /// # Panics
    /// Panics on out-of-range `var` or non-finite coefficient.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "objective var {var} out of range");
        assert!(coeff.is_finite(), "non-finite objective coefficient");
        self.objective[var] += coeff;
    }

    /// Adds the constraint `sum(coeff_i * x_var_i) rel rhs`.
    ///
    /// Duplicate variable entries in `coeffs` are summed. Zero coefficients
    /// are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite values.
    pub fn add_row(&mut self, rel: Relation, rhs: f64, coeffs: &[(usize, f64)]) -> RowId {
        assert!(rhs.is_finite(), "non-finite rhs");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        let mut sorted = coeffs.to_vec();
        sorted.sort_by_key(|&(v, _)| v);
        for &(var, c) in &sorted {
            assert!(var < self.num_vars, "row var {var} out of range");
            assert!(c.is_finite(), "non-finite row coefficient");
            match merged.last_mut() {
                Some((last_var, last_c)) if *last_var == var => *last_c += c,
                _ => merged.push((var, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        let id = RowId(self.rows.len());
        self.rows.push(Row { coeffs: merged, rel, rhs });
        id
    }

    /// Solves with default [`SolverOptions`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves with explicit options.
    pub fn solve_with(&self, opts: &SolverOptions) -> Result<Solution, LpError> {
        let _span = lowlat_telemetry::span("lp.solve", "lp");
        let sf = self.to_standard_form();
        solve_standard_form(&sf, opts)
    }

    /// Solves warm: re-optimizes from the basis a previous solve left in
    /// `basis`, and stores this solve's optimal basis back into it.
    ///
    /// This is the §5 deployment-cycle accelerator — successive minutes pose
    /// nearly identical LPs, and restarting phase 2 from the previous
    /// optimal vertex skips both phase 1 and most pivots. The handle is
    /// self-validating: when the stored basis does not fit this problem
    /// (different shape) or is no longer primal-feasible (data moved too
    /// far, or the basis went singular), the solve silently falls back to
    /// the cold two-phase method. Warm and cold solves always agree on the
    /// objective; see [`Solution::warm_started`] for which path ran.
    pub fn solve_warm(&self, basis: &mut Basis) -> Result<Solution, LpError> {
        self.solve_warm_with(&SolverOptions::default(), basis)
    }

    /// [`Problem::solve_warm`] with explicit options.
    pub fn solve_warm_with(
        &self,
        opts: &SolverOptions,
        basis: &mut Basis,
    ) -> Result<Solution, LpError> {
        let _span = lowlat_telemetry::span("lp.solve", "lp");
        let sf = self.to_standard_form();
        solve_standard_form_warm(&sf, opts, basis)
    }

    /// Converts to equality standard form: appends one slack (`<=`, coeff
    /// +1) or surplus (`>=`, coeff -1) column per inequality row, then
    /// negates rows as needed so every right-hand side is non-negative.
    pub(crate) fn to_standard_form(&self) -> StandardForm {
        let m = self.rows.len();
        let n_structural = self.num_vars;
        let n_slack = self.rows.iter().filter(|r| r.rel != Relation::Eq).count();
        let n = n_structural + n_slack;

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut b = vec![0.0; m];
        let mut c = vec![0.0; n];
        c[..n_structural].copy_from_slice(&self.objective);
        let mut upper = vec![f64::INFINITY; n];
        upper[..n_structural].copy_from_slice(&self.upper);

        let mut slack_idx = n_structural;
        for (i, row) in self.rows.iter().enumerate() {
            let negate = row.rhs < 0.0;
            let sign = if negate { -1.0 } else { 1.0 };
            b[i] = sign * row.rhs;
            for &(var, coeff) in &row.coeffs {
                cols[var].push((i, sign * coeff));
            }
            match row.rel {
                Relation::Eq => {}
                Relation::Le => {
                    cols[slack_idx].push((i, sign));
                    slack_idx += 1;
                }
                Relation::Ge => {
                    cols[slack_idx].push((i, -sign));
                    slack_idx += 1;
                }
            }
        }
        StandardForm { num_structural: n_structural, cols, b, c, upper }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_coeffs_merge() {
        let mut p = Problem::minimize(2);
        p.add_row(Relation::Le, 5.0, &[(0, 1.0), (0, 2.0), (1, 1.0), (1, -1.0)]);
        let sf = p.to_standard_form();
        assert_eq!(sf.cols[0], vec![(0, 3.0)]);
        assert!(sf.cols[1].is_empty(), "cancelled coefficient dropped");
    }

    #[test]
    fn negative_rhs_normalized() {
        let mut p = Problem::minimize(1);
        // x >= 2 written as  -x <= -2
        p.add_row(Relation::Le, -2.0, &[(0, -1.0)]);
        let sf = p.to_standard_form();
        assert_eq!(sf.b, vec![2.0]);
        assert_eq!(sf.cols[0], vec![(0, 1.0)]); // negated
        assert_eq!(sf.cols[1], vec![(0, -1.0)]); // slack flipped too
    }

    #[test]
    fn objective_accumulates() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, 1.5);
        p.set_objective(0, 0.5);
        let sf = p.to_standard_form();
        assert_eq!(sf.c[0], 2.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_var_rejected() {
        let mut p = Problem::minimize(1);
        p.add_row(Relation::Le, 1.0, &[(1, 1.0)]);
    }
}
