//! Two-phase revised simplex over the equality standard form, with native
//! variable upper bounds.
//!
//! The basis inverse is kept as a dense **column-major** matrix so the three
//! hot operations — pricing vector `y = c_B B⁻¹`, entering column
//! `w = B⁻¹ A_j`, and the eta update after a pivot — all stream over
//! contiguous memory.
//!
//! Upper bounds are handled the standard way: a nonbasic variable may rest
//! at either bound, entering variables move off whichever bound they sit at,
//! and the ratio test admits three block events (a basic variable hitting
//! zero, a basic variable hitting its own upper bound, or the entering
//! variable flipping straight to its opposite bound without a basis change).
//! This keeps row counts small for problems like the paper's locality
//! redistribution LP, where every aggregate has a cap but only the per-node
//! marginals are genuine rows.

use lowlat_telemetry as telemetry;

/// Equality standard form `min c·x  s.t.  A x = b (b >= 0), 0 <= x <= u`
/// with sparse columns. Produced by [`crate::Problem::to_standard_form`].
pub(crate) struct StandardForm {
    /// Number of structural (caller-visible) variables; the rest are slacks.
    pub num_structural: usize,
    /// Sparse columns: `cols[j]` lists `(row, coeff)` with rows strictly
    /// increasing.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Right-hand side, all entries non-negative.
    pub b: Vec<f64>,
    /// Objective (length `cols.len()`, slacks carry 0).
    pub c: Vec<f64>,
    /// Upper bounds per column (`f64::INFINITY` when absent).
    pub upper: Vec<f64>,
}

/// Why the solver gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can decrease without bound.
    Unbounded,
    /// Iteration limit hit (see [`SolverOptions::max_iterations`]).
    IterationLimit,
    /// The basis became numerically singular even after refactorization.
    Numerical,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit exceeded"),
            LpError::Numerical => write!(f, "numerical failure"),
        }
    }
}

impl std::error::Error for LpError {}

/// Solver tuning knobs. The defaults are used everywhere in this workspace.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Hard pivot cap; `0` selects `20_000 + 100 * (rows + cols)`.
    pub max_iterations: usize,
    /// Base tolerance for reduced costs and pivot magnitudes.
    pub tol: f64,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { max_iterations: 0, tol: 1e-9, refactor_every: 2048 }
    }
}

/// A reusable simplex basis — the warm-start handle.
///
/// [`crate::Problem::solve_warm`] reads the previous optimum's basis out of
/// this handle, re-optimizes from it, and writes the new optimal basis back.
/// A fresh (or [`Basis::clear`]ed) handle makes the solve cold. The handle
/// is deliberately forgiving: a basis whose shape does not match the
/// problem, or that turns out singular or infeasible under the new data,
/// silently degrades to a cold solve — staleness can cost time, never
/// correctness.
#[derive(Clone, Default)]
pub struct Basis {
    /// Basic column per row, in standard-form column space (structural
    /// variables first, then slacks). Empty = no basis stored.
    basic: Vec<usize>,
    /// Nonbasic standard-form columns resting at their upper bound.
    at_upper: Vec<usize>,
    /// `(rows, standard-form columns)` of the problem that produced this
    /// basis; reuse requires an exact match.
    shape: (usize, usize),
    /// The basis inverse at export time (column-major m*m), carried so a
    /// restart against an *unchanged* constraint matrix skips the O(m³)
    /// refactorization — it is verified against the new matrix before use
    /// and recomputed when the verification fails. Omitted for very large
    /// bases (memory) — see [`BINV_CARRY_LIMIT`].
    binv: Option<Vec<f64>>,
}

/// Largest row count whose basis inverse is carried inside [`Basis`]
/// (8 MB of f64 at the limit); beyond it a warm restart refactorizes.
const BINV_CARRY_LIMIT: usize = 1024;

impl std::fmt::Debug for Basis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Basis")
            .field("shape", &self.shape)
            .field("basic", &self.basic)
            .field("at_upper", &self.at_upper)
            .field("carries_binv", &self.binv.is_some())
            .finish()
    }
}

impl Basis {
    /// A fresh, cold handle.
    pub fn new() -> Self {
        Basis::default()
    }

    /// True when a previous solve stored a basis to restart from.
    pub fn is_warm(&self) -> bool {
        !self.basic.is_empty()
    }

    /// Forgets the stored basis; the next `solve_warm` will run cold.
    pub fn clear(&mut self) {
        self.basic.clear();
        self.at_upper.clear();
        self.shape = (0, 0);
        self.binv = None;
    }

    /// Re-labels the stored basis for a problem whose *structural* columns
    /// were renumbered — the lazy-path-growth case, where new variables are
    /// spliced in and every surviving column keeps its exact coefficients
    /// and the row set is unchanged. `map[old] = new` for each old
    /// structural column; slacks keep their positions after the structural
    /// block. The carried inverse stays valid because neither the rows nor
    /// any mapped column's coefficients changed.
    ///
    /// Returns `false` (and clears the basis) when the stored basis does
    /// not match `old_structural` or the map is inconsistent — the caller
    /// simply loses the warm start, never correctness.
    pub fn remap_columns(
        &mut self,
        old_structural: usize,
        new_structural: usize,
        map: &[usize],
    ) -> bool {
        if !self.is_warm() || map.len() != old_structural || self.shape.1 < old_structural {
            self.clear();
            return false;
        }
        let slacks = self.shape.1 - old_structural;
        let remap = |col: usize| -> Option<usize> {
            if col < old_structural {
                let new = map[col];
                (new < new_structural).then_some(new)
            } else {
                Some(new_structural + (col - old_structural))
            }
        };
        let mut basic = Vec::with_capacity(self.basic.len());
        for &j in &self.basic {
            match remap(j) {
                Some(new) => basic.push(new),
                None => {
                    self.clear();
                    return false;
                }
            }
        }
        let mut at_upper = Vec::with_capacity(self.at_upper.len());
        for &j in &self.at_upper {
            match remap(j) {
                Some(new) => at_upper.push(new),
                None => {
                    self.clear();
                    return false;
                }
            }
        }
        self.basic = basic;
        self.at_upper = at_upper;
        self.shape.1 = new_structural + slacks;
        true
    }
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    iterations: usize,
    warm_started: bool,
}

impl Solution {
    /// Value of structural variable `var`.
    pub fn value(&self, var: usize) -> f64 {
        self.x[var]
    }

    /// All structural variable values.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Objective at the optimum.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Total simplex pivots across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// True when this solve re-optimized from a caller-supplied [`Basis`]
    /// instead of running the two-phase method from scratch.
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }
}

/// Where a nonbasic variable rests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Rest {
    Lower,
    Upper,
    Basic,
}

/// Dense column-major basis inverse with the working vectors of the revised
/// simplex.
struct Engine<'a> {
    sf: &'a StandardForm,
    m: usize,
    /// Total columns including artificials.
    total_n: usize,
    /// First artificial column index (== sf.cols.len()).
    art_start: usize,
    /// For artificial j (>= art_start), its row is `art_row[j - art_start]`.
    art_row: Vec<usize>,
    /// Column-major m*m basis inverse: element (i,k) at `binv[k*m + i]`.
    binv: Vec<f64>,
    /// Basic variable per row.
    basis: Vec<usize>,
    rest: Vec<Rest>,
    /// Current basic solution values (aligned with `basis`).
    xb: Vec<f64>,
    opts: SolverOptions,
    iterations: usize,
    /// Consecutive degenerate pivots; triggers Bland's rule.
    stall: usize,
    scratch_y: Vec<f64>,
    scratch_w: Vec<f64>,
}

/// Outcome of the ratio test.
enum Block {
    /// Entering variable flips to its other bound; no basis change.
    BoundFlip,
    /// Basic variable in this row leaves at the given bound.
    Leaves { row: usize, at_upper: bool },
    /// Nothing blocks: unbounded direction.
    None,
}

impl<'a> Engine<'a> {
    fn new(sf: &'a StandardForm, opts: SolverOptions) -> Self {
        let m = sf.b.len();
        let n = sf.cols.len();

        // Pick initial basic columns: slacks that are a bare +1 in their row.
        let mut row_basic: Vec<Option<usize>> = vec![None; m];
        for j in sf.num_structural..n {
            if let [(r, v)] = sf.cols[j][..] {
                if (v - 1.0).abs() < 1e-12 && row_basic[r].is_none() {
                    row_basic[r] = Some(j);
                }
            }
        }
        let mut art_row = Vec::new();
        let mut basis = vec![usize::MAX; m];
        let mut rest = vec![Rest::Lower; n];
        for (r, rb) in row_basic.iter().enumerate() {
            match rb {
                Some(j) => {
                    basis[r] = *j;
                    rest[*j] = Rest::Basic;
                }
                None => {
                    basis[r] = n + art_row.len();
                    art_row.push(r);
                }
            }
        }
        let total_n = n + art_row.len();
        rest.resize(total_n, Rest::Basic);

        // All initial basis columns are unit vectors => B = I, and every
        // nonbasic starts at its lower bound => xb = b.
        let mut binv = vec![0.0; m * m];
        for k in 0..m {
            binv[k * m + k] = 1.0;
        }
        Engine {
            sf,
            m,
            total_n,
            art_start: n,
            art_row,
            binv,
            basis,
            rest,
            xb: sf.b.clone(),
            opts,
            iterations: 0,
            stall: 0,
            scratch_y: vec![0.0; m],
            scratch_w: vec![0.0; m],
        }
    }

    fn has_artificials(&self) -> bool {
        self.total_n > self.art_start
    }

    fn upper(&self, j: usize) -> f64 {
        if j < self.sf.upper.len() {
            self.sf.upper[j]
        } else {
            f64::INFINITY // artificials
        }
    }

    /// `w = B^-1 A_j` into `scratch_w`.
    fn compute_w(&mut self, j: usize) {
        let m = self.m;
        let mut w = std::mem::take(&mut self.scratch_w);
        w.iter_mut().for_each(|x| *x = 0.0);
        if j < self.art_start {
            for &(r, v) in &self.sf.cols[j] {
                let colr = &self.binv[r * m..r * m + m];
                for (wi, bi) in w.iter_mut().zip(colr) {
                    *wi += v * bi;
                }
            }
        } else {
            let r = self.art_row[j - self.art_start];
            w.copy_from_slice(&self.binv[r * m..r * m + m]);
        }
        self.scratch_w = w;
    }

    /// `y = c_B' B^-1` into `scratch_y` for the given phase costs.
    fn compute_y(&mut self, cost: &dyn Fn(usize) -> f64) {
        let m = self.m;
        let mut y = std::mem::take(&mut self.scratch_y);
        let cb: Vec<f64> = self.basis.iter().map(|&j| cost(j)).collect();
        for (k, yk) in y.iter_mut().enumerate() {
            let colk = &self.binv[k * m..k * m + m];
            *yk = cb.iter().zip(colk).map(|(a, b)| a * b).sum();
        }
        self.scratch_y = y;
    }

    /// Reduced cost of column `j` given `scratch_y`.
    fn reduced_cost(&self, j: usize, cost: &dyn Fn(usize) -> f64) -> f64 {
        let mut dot = 0.0;
        if j < self.art_start {
            for &(r, v) in &self.sf.cols[j] {
                dot += v * self.scratch_y[r];
            }
        } else {
            dot = self.scratch_y[self.art_row[j - self.art_start]];
        }
        cost(j) - dot
    }

    /// One phase of the simplex: minimize `cost` from the current basis.
    /// `barred(j)` columns may never enter. Returns Ok(()) at optimality.
    fn run_phase(
        &mut self,
        cost: &dyn Fn(usize) -> f64,
        barred: &dyn Fn(usize) -> bool,
        max_iter: usize,
    ) -> Result<(), LpError> {
        let tol = self.opts.tol;
        loop {
            if self.iterations >= max_iter {
                return Err(LpError::IterationLimit);
            }
            self.compute_y(cost);

            // Pricing: Dantzig normally, Bland's rule while stalled. A
            // variable at its upper bound enters by *decreasing*, so it is
            // attractive when its reduced cost is positive.
            let bland = self.stall > self.m + 64;
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.total_n {
                if self.rest[j] == Rest::Basic || barred(j) {
                    continue;
                }
                let d = self.reduced_cost(j, cost);
                let score = match self.rest[j] {
                    Rest::Lower => -d,
                    Rest::Upper => d,
                    Rest::Basic => unreachable!(),
                };
                if score > tol {
                    if bland {
                        entering = Some((j, score));
                        break;
                    }
                    match entering {
                        Some((_, best)) if score <= best => {}
                        _ => entering = Some((j, score)),
                    }
                }
            }
            let Some((j, _)) = entering else {
                return Ok(()); // optimal for this phase
            };

            self.compute_w(j);
            let from_upper = self.rest[j] == Rest::Upper;
            // Direction sign: moving off the lower bound increases x_j,
            // off the upper bound decreases it; basic values change by
            // -t * sign * w.
            let sign = if from_upper { -1.0 } else { 1.0 };

            let (theta, block) = self.ratio_test(j, sign, bland);
            match block {
                Block::None => return Err(LpError::Unbounded),
                Block::BoundFlip => {
                    // x_j travels its full range; no basis change.
                    let span = self.upper(j);
                    debug_assert!(span.is_finite());
                    for i in 0..self.m {
                        let v = self.xb[i] - span * sign * self.scratch_w[i];
                        self.xb[i] = if v < 0.0 && v > -1e-7 { 0.0 } else { v };
                    }
                    self.rest[j] = if from_upper { Rest::Lower } else { Rest::Upper };
                    self.iterations += 1;
                    self.stall = if span <= 1e-12 { self.stall + 1 } else { 0 };
                }
                Block::Leaves { row, at_upper } => {
                    self.stall = if theta <= 1e-12 { self.stall + 1 } else { 0 };
                    self.pivot(j, row, theta, sign, from_upper, at_upper);
                }
            }

            if self.iterations.is_multiple_of(self.opts.refactor_every) {
                self.refactorize()?;
            }
        }
    }

    /// Ratio test for entering variable `j` moving with direction `sign`
    /// (`scratch_w` holds `B^-1 A_j`). Returns the step length `t >= 0` and
    /// what blocked it.
    fn ratio_test(&self, j: usize, sign: f64, bland: bool) -> (f64, Block) {
        let piv_tol = 1e-9;
        let mut theta = self.upper(j); // bound-flip distance
        let mut block = if theta.is_finite() { Block::BoundFlip } else { Block::None };
        let mut best_w = 0.0;
        for i in 0..self.m {
            let wi = sign * self.scratch_w[i];
            // Basic value moves as xb_i - t * wi.
            let (limit, at_upper) = if wi > piv_tol {
                ((self.xb[i].max(0.0)) / wi, false)
            } else if wi < -piv_tol {
                let ub = self.upper(self.basis[i]);
                if !ub.is_finite() {
                    continue;
                }
                (((ub - self.xb[i]).max(0.0)) / -wi, true)
            } else {
                continue;
            };
            let better = if limit < theta - 1e-10 {
                true
            } else if limit <= theta + 1e-10 {
                match block {
                    Block::Leaves { row, .. } => {
                        if bland {
                            self.basis[i] < self.basis[row]
                        } else {
                            wi.abs() > best_w
                        }
                    }
                    // Prefer a pivot over a bound flip at equal distance:
                    // it changes the basis and helps escape degeneracy.
                    _ => true,
                }
            } else {
                false
            };
            if better {
                theta = limit.max(0.0);
                best_w = wi.abs();
                block = Block::Leaves { row: i, at_upper };
            }
        }
        let _ = j;
        (theta, block)
    }

    /// Applies a basis-changing pivot: variable `j` enters moving `theta`
    /// from its current bound (direction `sign`), the basic variable in
    /// `row` leaves at lower (0) or upper bound.
    fn pivot(
        &mut self,
        j: usize,
        r: usize,
        theta: f64,
        sign: f64,
        from_upper: bool,
        leave_at_upper: bool,
    ) {
        let m = self.m;
        let wr = self.scratch_w[r];
        debug_assert!(wr.abs() > 1e-12, "pivot on ~zero element");

        // Update basic values; forgive only round-off-sized negativity so
        // genuine drift still surfaces (and is repaired by refactorization).
        for i in 0..m {
            if i != r {
                let v = self.xb[i] - theta * sign * self.scratch_w[i];
                self.xb[i] = if v < 0.0 && v > -1e-7 { 0.0 } else { v };
            }
        }
        // Entering variable's new value.
        self.xb[r] = if from_upper { self.upper(j) - theta } else { theta };

        // Eta update of the column-major inverse: for every column k,
        //   t = (B^-1)_{r,k};  (B^-1)_{i,k} -= w_i * t / w_r  (i != r);
        //   (B^-1)_{r,k} = t / w_r.
        for k in 0..m {
            let colk = &mut self.binv[k * m..k * m + m];
            let t = colk[r];
            if t == 0.0 {
                continue;
            }
            let scale = t / wr;
            for i in 0..m {
                colk[i] -= self.scratch_w[i] * scale;
            }
            // The loop above set colk[r] = t - wr * (t/wr) = 0; restore.
            colk[r] = scale;
        }

        let old = self.basis[r];
        self.rest[old] = if leave_at_upper { Rest::Upper } else { Rest::Lower };
        self.basis[r] = j;
        self.rest[j] = Rest::Basic;
        self.iterations += 1;
    }

    /// Rebuilds `binv` from scratch by Gauss-Jordan elimination of the basis
    /// matrix, then recomputes `xb = B^-1 (b - N x_N)`. Guards drift.
    fn refactorize(&mut self) -> Result<(), LpError> {
        telemetry::counter_add("lp.refactorizations", 1);
        let m = self.m;
        let mut bmat = vec![0.0; m * m];
        for (k, &j) in self.basis.iter().enumerate() {
            if j < self.art_start {
                for &(r, v) in &self.sf.cols[j] {
                    bmat[k * m + r] = v;
                }
            } else {
                bmat[k * m + self.art_row[j - self.art_start]] = 1.0;
            }
        }
        let inv = invert_column_major(&bmat, m).ok_or(LpError::Numerical)?;
        self.binv = inv;
        self.recompute_xb();
        Ok(())
    }

    /// Recomputes `xb = B^-1 (b - N x_N)` from the current inverse.
    fn recompute_xb(&mut self) {
        let m = self.m;
        // Effective rhs: b minus contributions of nonbasics at upper bound.
        let mut rhs = self.sf.b.clone();
        for j in 0..self.art_start {
            if self.rest[j] == Rest::Upper {
                let u = self.sf.upper[j];
                for &(r, v) in &self.sf.cols[j] {
                    rhs[r] -= v * u;
                }
            }
        }
        for i in 0..m {
            let mut acc = 0.0;
            for k in 0..m {
                acc += self.binv[k * m + i] * rhs[k];
            }
            self.xb[i] = if acc < 0.0 && acc > -1e-7 { 0.0 } else { acc };
        }
    }

    /// Checks that `binv` really inverts the current basis matrix: for each
    /// basis position `i`, `B^-1 A_{basis[i]}` must be the unit vector
    /// `e_i`. O(m² · column-nnz) — far below the O(m³) refactorization it
    /// lets a warm restart skip when the constraint matrix is unchanged.
    fn binv_is_current(&mut self) -> bool {
        let m = self.m;
        for i in 0..m {
            self.compute_w(self.basis[i]);
            for (k, &wk) in self.scratch_w.iter().enumerate() {
                let expect = if k == i { 1.0 } else { 0.0 };
                if (wk - expect).abs() > 1e-6 {
                    return false;
                }
            }
        }
        true
    }

    /// Dual-simplex-style repair: drives bound-violating basic variables to
    /// the bound they violate, entering the nonbasic column that least
    /// damages phase-2 optimality. This is what makes a warm restart
    /// survive the deployment cycle's minute-to-minute drift — the restored
    /// vertex is usually *slightly* infeasible under the new data, and a
    /// handful of dual pivots repairs it where a cold solve would redo
    /// phase 1 from scratch. Returns `false` when it gives up (caller
    /// falls back to a cold solve); correctness never depends on success.
    fn dual_repair(&mut self, cost: &dyn Fn(usize) -> f64, max_pivots: usize) -> bool {
        let m = self.m;
        let scale = 1.0 + self.sf.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let feas_tol = 1e-7 * scale;
        for _ in 0..max_pivots {
            // Most violated basic variable.
            let mut r = usize::MAX;
            let mut worst = feas_tol;
            let mut to_upper = false;
            for i in 0..m {
                if -self.xb[i] > worst {
                    worst = -self.xb[i];
                    r = i;
                    to_upper = false;
                }
                let ub = self.upper(self.basis[i]);
                if self.xb[i] - ub > worst {
                    worst = self.xb[i] - ub;
                    r = i;
                    to_upper = true;
                }
            }
            if r == usize::MAX {
                // Feasible (within tolerance): snap round-off into range.
                for i in 0..m {
                    let ub = self.upper(self.basis[i]);
                    self.xb[i] = self.xb[i].clamp(0.0, ub);
                }
                return true;
            }
            self.compute_y(cost);
            // Entering candidate: the eligible column with the smallest
            // |reduced cost| per unit of repair (classic dual ratio test,
            // used as a least-damage heuristic since c may have drifted).
            let mut best: Option<(usize, f64, f64)> = None;
            for j in 0..self.total_n {
                if self.rest[j] == Rest::Basic {
                    continue;
                }
                let alpha = if j < self.art_start {
                    self.sf.cols[j].iter().map(|&(row, v)| v * self.binv[row * m + r]).sum::<f64>()
                } else {
                    self.binv[self.art_row[j - self.art_start] * m + r]
                };
                let sign = if self.rest[j] == Rest::Upper { -1.0 } else { 1.0 };
                // Moving j off its bound changes xb[r] by -t * dir.
                let dir = sign * alpha;
                let eligible = if to_upper { dir > 1e-7 } else { dir < -1e-7 };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, cost);
                let d_eff = if self.rest[j] == Rest::Upper { -d } else { d };
                let ratio = d_eff.abs() / dir.abs();
                let better = match best {
                    Some((_, br, ba)) => {
                        ratio < br - 1e-12 || (ratio <= br + 1e-12 && dir.abs() > ba)
                    }
                    None => true,
                };
                if better {
                    best = Some((j, ratio, dir.abs()));
                }
            }
            let Some((j, _, _)) = best else {
                return false; // nothing can repair this row
            };
            self.compute_w(j);
            let from_upper = self.rest[j] == Rest::Upper;
            let sign = if from_upper { -1.0 } else { 1.0 };
            let wr = sign * self.scratch_w[r];
            let target = if to_upper { self.upper(self.basis[r]) } else { 0.0 };
            let theta = (self.xb[r] - target) / wr;
            if !theta.is_finite() || theta < 0.0 {
                return false;
            }
            self.pivot(j, r, theta, sign, from_upper, to_upper);
        }
        false
    }

    /// After phase 1: pivot basic artificials out where possible so phase 2
    /// cannot push them positive. Rows whose artificial cannot be displaced
    /// are linearly dependent and inert (their `w` entry is zero for every
    /// column), so leaving the artificial basic at 0 is safe.
    fn drive_out_artificials(&mut self) {
        let m = self.m;
        for r in 0..m {
            if self.basis[r] < self.art_start {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                if self.rest[j] == Rest::Basic {
                    continue;
                }
                let mut w_rj = 0.0;
                for &(rr, v) in &self.sf.cols[j] {
                    w_rj += v * self.binv[rr * m + r];
                }
                if w_rj.abs() > 1e-7 {
                    match best {
                        Some((_, bv)) if w_rj.abs() <= bv => {}
                        _ => best = Some((j, w_rj.abs())),
                    }
                }
            }
            if let Some((j, _)) = best {
                let from_upper = self.rest[j] == Rest::Upper;
                self.compute_w(j);
                if self.scratch_w[r].abs() <= 1e-12 {
                    continue;
                }
                // Degenerate pivot: the artificial sits at ~0, so theta ~ 0
                // and no basic value moves materially.
                let sign = if from_upper { -1.0 } else { 1.0 };
                let theta = (self.xb[r] / (sign * self.scratch_w[r])).max(0.0);
                self.pivot(j, r, theta, sign, from_upper, false);
            }
        }
    }

    fn extract(&self) -> Solution {
        let mut x = vec![0.0; self.sf.num_structural];
        for j in 0..self.sf.num_structural {
            if self.rest[j] == Rest::Upper {
                x[j] = self.sf.upper[j];
            }
        }
        for (r, &j) in self.basis.iter().enumerate() {
            if j < self.sf.num_structural {
                x[j] = self.xb[r].max(0.0);
            }
        }
        let objective = x.iter().zip(&self.sf.c).map(|(xi, ci)| xi * ci).sum();
        Solution { x, objective, iterations: self.iterations, warm_started: false }
    }

    /// Restores an engine from a previously exported basis. The carried
    /// inverse is reused when it still inverts this problem's basis matrix
    /// (the constraint matrix did not change — the deployment-cycle common
    /// case); otherwise the inverse is rebuilt by refactorization. The
    /// restored vertex may be primal-infeasible under the new data — the
    /// caller repairs it with [`Engine::dual_repair`]. `None` means the
    /// basis is unusable (wrong shape, corrupt, or singular) and the caller
    /// should solve cold.
    fn with_basis(sf: &'a StandardForm, opts: SolverOptions, warm: &Basis) -> Option<Self> {
        let m = sf.b.len();
        let n = sf.cols.len();
        if warm.shape != (m, n) || warm.basic.len() != m || m == 0 {
            return None;
        }
        let mut rest = vec![Rest::Lower; n];
        for &j in &warm.at_upper {
            if j >= n || !sf.upper[j].is_finite() {
                return None;
            }
            rest[j] = Rest::Upper;
        }
        for &j in &warm.basic {
            // Out-of-range column, duplicate, or a column listed both basic
            // and at-upper: the basis is corrupt.
            if j >= n || rest[j] == Rest::Basic || warm.at_upper.contains(&j) {
                return None;
            }
            rest[j] = Rest::Basic;
        }
        let mut eng = Engine {
            sf,
            m,
            total_n: n,
            art_start: n,
            art_row: Vec::new(),
            binv: vec![0.0; m * m],
            basis: warm.basic.clone(),
            rest,
            xb: vec![0.0; m],
            opts,
            iterations: 0,
            stall: 0,
            scratch_y: vec![0.0; m],
            scratch_w: vec![0.0; m],
        };
        let carried = match &warm.binv {
            Some(binv) if binv.len() == m * m => {
                eng.binv.copy_from_slice(binv);
                eng.binv_is_current()
            }
            _ => false,
        };
        if carried {
            eng.recompute_xb();
        } else {
            // Rebuild the inverse; a singular basis surfaces here.
            eng.refactorize().ok()?;
        }
        Some(eng)
    }

    /// Writes the current basis (and its inverse) into `out` for reuse by a
    /// later solve. A basis still holding an artificial (a degenerate,
    /// linearly dependent row) is not representable for restart; `out` is
    /// cleared instead.
    fn export_basis(&self, out: &mut Basis) {
        if self.basis.iter().any(|&j| j >= self.art_start) {
            out.clear();
            return;
        }
        out.basic.clear();
        out.basic.extend_from_slice(&self.basis);
        out.at_upper.clear();
        out.at_upper.extend((0..self.art_start).filter(|&j| self.rest[j] == Rest::Upper));
        out.shape = (self.m, self.art_start);
        if self.m <= BINV_CARRY_LIMIT {
            match &mut out.binv {
                Some(store) if store.len() == self.binv.len() => {
                    store.copy_from_slice(&self.binv);
                }
                store => *store = Some(self.binv.clone()),
            }
        } else {
            out.binv = None;
        }
    }
}

/// Inverts an m*m column-major matrix by Gauss-Jordan with partial pivoting.
/// Returns `None` if (numerically) singular.
fn invert_column_major(a: &[f64], m: usize) -> Option<Vec<f64>> {
    // Work row-major for the elimination, convert at the edges.
    let mut w = vec![0.0; m * m];
    for k in 0..m {
        for i in 0..m {
            w[i * m + k] = a[k * m + i];
        }
    }
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        let mut piv = col;
        let mut best = w[col * m + col].abs();
        for i in col + 1..m {
            let v = w[i * m + col].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for k in 0..m {
                w.swap(col * m + k, piv * m + k);
                inv.swap(col * m + k, piv * m + k);
            }
        }
        let d = w[col * m + col];
        for k in 0..m {
            w[col * m + k] /= d;
            inv[col * m + k] /= d;
        }
        for i in 0..m {
            if i != col {
                let f = w[i * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        w[i * m + k] -= f * w[col * m + k];
                        inv[i * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
    }
    let mut out = vec![0.0; m * m];
    for i in 0..m {
        for k in 0..m {
            out[k * m + i] = inv[i * m + k];
        }
    }
    Some(out)
}

/// Entry point used by [`crate::Problem::solve_with`].
pub(crate) fn solve_standard_form(
    sf: &StandardForm,
    opts: &SolverOptions,
) -> Result<Solution, LpError> {
    solve_standard_form_cold(sf, opts, None)
}

/// Warm entry point used by [`crate::Problem::solve_warm_with`]: restart
/// phase 2 from `basis` when it still fits the problem, fall back to the
/// two-phase cold solve otherwise, and leave the new optimal basis in
/// `basis` either way.
pub(crate) fn solve_standard_form_warm(
    sf: &StandardForm,
    opts: &SolverOptions,
    basis: &mut Basis,
) -> Result<Solution, LpError> {
    let attempted_warm = basis.is_warm();
    if attempted_warm {
        if let Some(mut eng) = Engine::with_basis(sf, opts.clone(), basis) {
            let m = sf.b.len();
            let n = sf.cols.len();
            let max_iter =
                if opts.max_iterations == 0 { 20_000 + 100 * (m + n) } else { opts.max_iterations };
            let c = &sf.c;
            let cost = move |j: usize| if j < c.len() { c[j] } else { 0.0 };
            // The restored vertex is usually slightly infeasible under the
            // new data; a few dual pivots repair it. Budget is generous —
            // repair beyond it means the problems diverged too far for a
            // restart to pay off anyway.
            if eng.dual_repair(&cost, 64 + m / 2) {
                match eng.run_phase(&cost, &|_| false, max_iter) {
                    Ok(()) => {
                        eng.export_basis(basis);
                        let mut sol = eng.extract();
                        sol.warm_started = true;
                        if telemetry::enabled() {
                            telemetry::counter_add("lp.solves", 1);
                            telemetry::counter_add("lp.warm_hits", 1);
                            telemetry::observe("lp.pivots", sol.iterations() as f64);
                        }
                        return Ok(sol);
                    }
                    Err(LpError::Unbounded) => {
                        // Reachable from a feasible vertex => genuinely
                        // unbounded.
                        return Err(LpError::Unbounded);
                    }
                    // Iteration-limit or numerical trouble along the warm
                    // path: retry cold rather than propagate a restart
                    // artifact.
                    Err(_) => {}
                }
            }
        }
    }
    // A stored basis that did not carry the solve to optimality costs a
    // cold restart — the "degrade" the telemetry layer makes visible.
    if attempted_warm {
        telemetry::counter_add("lp.degrade_to_cold", 1);
    }
    solve_standard_form_cold(sf, opts, Some(basis))
}

/// The two-phase cold solve; exports the final basis when asked.
fn solve_standard_form_cold(
    sf: &StandardForm,
    opts: &SolverOptions,
    export: Option<&mut Basis>,
) -> Result<Solution, LpError> {
    if telemetry::enabled() {
        telemetry::counter_add("lp.solves", 1);
        telemetry::counter_add("lp.cold_solves", 1);
    }
    let m = sf.b.len();
    let n = sf.cols.len();

    // Trivial case: no constraints. Negative-cost variables run to their
    // upper bound (or to infinity).
    if m == 0 {
        if let Some(basis) = export {
            basis.clear();
        }
        let mut x = vec![0.0; sf.num_structural];
        for j in 0..sf.num_structural {
            if sf.c[j] < -opts.tol {
                if sf.upper[j].is_finite() {
                    x[j] = sf.upper[j];
                } else {
                    return Err(LpError::Unbounded);
                }
            }
        }
        let objective = x.iter().zip(&sf.c).map(|(a, b)| a * b).sum();
        return Ok(Solution { x, objective, iterations: 0, warm_started: false });
    }

    let max_iter =
        if opts.max_iterations == 0 { 20_000 + 100 * (m + n) } else { opts.max_iterations };
    let mut eng = Engine::new(sf, opts.clone());

    if eng.has_artificials() {
        let art_start = eng.art_start;
        let phase1_cost = move |j: usize| if j >= art_start { 1.0 } else { 0.0 };
        match eng.run_phase(&phase1_cost, &|_| false, max_iter) {
            Ok(()) => {}
            Err(LpError::Unbounded) => {
                // Phase-1 objective is bounded below by 0; this is numerics.
                return Err(LpError::Numerical);
            }
            Err(e) => return Err(e),
        }
        let art_sum: f64 =
            eng.basis.iter().zip(&eng.xb).filter(|(&j, _)| j >= art_start).map(|(_, &v)| v).sum();
        let scale = 1.0 + sf.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
        if art_sum > 1e-7 * scale {
            return Err(LpError::Infeasible);
        }
        eng.drive_out_artificials();
    }

    let art_start = eng.art_start;
    let c = &sf.c;
    let phase2_cost = move |j: usize| if j < c.len() { c[j] } else { 0.0 };
    eng.run_phase(&phase2_cost, &|j| j >= art_start, max_iter)?;
    if let Some(basis) = export {
        eng.export_basis(basis);
    }
    let sol = eng.extract();
    telemetry::observe("lp.pivots", sol.iterations() as f64);
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use crate::{LpError, Problem, Relation};

    #[test]
    fn textbook_2d_max() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative)
        let mut p = Problem::minimize(2);
        p.set_objective(0, -3.0);
        p.set_objective(1, -5.0);
        p.add_row(Relation::Le, 4.0, &[(0, 1.0)]);
        p.add_row(Relation::Le, 12.0, &[(1, 2.0)]);
        p.add_row(Relation::Le, 18.0, &[(0, 3.0), (1, 2.0)]);
        let s = p.solve().unwrap();
        assert!((s.objective() + 36.0).abs() < 1e-8, "got {}", s.objective());
        assert!((s.value(0) - 2.0).abs() < 1e-8);
        assert!((s.value(1) - 6.0).abs() < 1e-8);
    }

    #[test]
    fn equality_rows_need_artificials() {
        // min x + y  s.t. x + y = 2, x - y = 0  => x = y = 1
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.add_row(Relation::Eq, 2.0, &[(0, 1.0), (1, 1.0)]);
        p.add_row(Relation::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
        let s = p.solve().unwrap();
        assert!((s.value(0) - 1.0).abs() < 1e-8);
        assert!((s.value(1) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ge_rows() {
        // min 2x + 3y  s.t. x + y >= 10, x <= 6  => x=6, y=4, obj=24
        let mut p = Problem::minimize(2);
        p.set_objective(0, 2.0);
        p.set_objective(1, 3.0);
        p.add_row(Relation::Ge, 10.0, &[(0, 1.0), (1, 1.0)]);
        p.add_row(Relation::Le, 6.0, &[(0, 1.0)]);
        let s = p.solve().unwrap();
        assert!((s.objective() - 24.0).abs() < 1e-8);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x - y  s.t. x + y <= 10, x <= 3 (bound), y <= 4 (bound)
        let mut p = Problem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        p.set_upper_bound(0, 3.0);
        p.set_upper_bound(1, 4.0);
        p.add_row(Relation::Le, 10.0, &[(0, 1.0), (1, 1.0)]);
        let s = p.solve().unwrap();
        assert!((s.value(0) - 3.0).abs() < 1e-8);
        assert!((s.value(1) - 4.0).abs() < 1e-8);
        assert!((s.objective() + 7.0).abs() < 1e-8);
    }

    #[test]
    fn bound_flip_only_problem() {
        // No rows at all: negative costs drive variables to their bounds.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -2.0);
        p.set_objective(1, 1.0);
        p.set_upper_bound(0, 5.0);
        let s = p.solve().unwrap();
        assert!((s.value(0) - 5.0).abs() < 1e-9);
        assert_eq!(s.value(1), 0.0);
    }

    #[test]
    fn upper_bound_transport_matches_row_formulation() {
        // Same LP expressed with bounds vs. with explicit cap rows.
        let cases = [(2.0, 7.0), (3.5, 1.0), (1.0, 10.0)];
        for (cap0, cap1) in cases {
            let mut with_bounds = Problem::minimize(2);
            with_bounds.set_objective(0, -3.0);
            with_bounds.set_objective(1, -2.0);
            with_bounds.set_upper_bound(0, cap0);
            with_bounds.set_upper_bound(1, cap1);
            with_bounds.add_row(Relation::Le, 8.0, &[(0, 1.0), (1, 1.0)]);

            let mut with_rows = Problem::minimize(2);
            with_rows.set_objective(0, -3.0);
            with_rows.set_objective(1, -2.0);
            with_rows.add_row(Relation::Le, cap0, &[(0, 1.0)]);
            with_rows.add_row(Relation::Le, cap1, &[(1, 1.0)]);
            with_rows.add_row(Relation::Le, 8.0, &[(0, 1.0), (1, 1.0)]);

            let a = with_bounds.solve().unwrap();
            let b = with_rows.solve().unwrap();
            assert!((a.objective() - b.objective()).abs() < 1e-8);
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(1);
        p.add_row(Relation::Le, 1.0, &[(0, 1.0)]);
        p.add_row(Relation::Ge, 2.0, &[(0, 1.0)]);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_by_bounds() {
        let mut p = Problem::minimize(1);
        p.set_upper_bound(0, 1.0);
        p.add_row(Relation::Ge, 2.0, &[(0, 1.0)]);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.add_row(Relation::Ge, 0.0, &[(0, 1.0)]);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_variable_not_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.set_upper_bound(0, 9.0);
        p.add_row(Relation::Ge, 0.0, &[(0, 1.0)]);
        let s = p.solve().unwrap();
        assert!((s.value(0) - 9.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut p = Problem::minimize(3);
        p.set_objective(0, -0.75);
        p.set_objective(1, 150.0);
        p.set_objective(2, -0.02);
        p.add_row(Relation::Le, 0.0, &[(0, 0.25), (1, -60.0), (2, -0.04)]);
        p.add_row(Relation::Le, 0.0, &[(0, 0.5), (1, -90.0), (2, -0.02)]);
        p.add_row(Relation::Le, 1.0, &[(2, 1.0)]);
        let s = p.solve().unwrap();
        assert!(s.objective() <= 0.0);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.add_row(Relation::Eq, 2.0, &[(0, 1.0), (1, 1.0)]);
        p.add_row(Relation::Eq, 2.0, &[(0, 1.0), (1, 1.0)]);
        let s = p.solve().unwrap();
        assert!((s.value(0) + s.value(1) - 2.0).abs() < 1e-8);
        assert!(s.value(0).abs() < 1e-8, "minimizing x drives it to 0");
    }

    #[test]
    fn zero_rhs_equality() {
        let mut p = Problem::minimize(3);
        p.set_objective(0, 5.0);
        p.set_objective(1, 4.0);
        p.set_objective(2, 3.0);
        p.add_row(Relation::Eq, 1.0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        p.add_row(Relation::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
        let s = p.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-8);
        assert!((s.value(2) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn free_column_variable_unbounded() {
        let mut p = Problem::minimize(2);
        p.set_objective(1, -1.0);
        p.add_row(Relation::Le, 1.0, &[(0, 1.0)]);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn no_constraints() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), 0.0);
    }

    #[test]
    fn moderately_sized_transport_problem() {
        let (ns, nd) = (4usize, 5usize);
        let supply = [30.0, 20.0, 25.0, 25.0];
        let demand = [20.0, 20.0, 20.0, 20.0, 20.0];
        let mut p = Problem::minimize(ns * nd);
        for i in 0..ns {
            for j in 0..nd {
                p.set_objective(i * nd + j, (i as f64 - j as f64).abs());
            }
        }
        for (i, s) in supply.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> = (0..nd).map(|j| (i * nd + j, 1.0)).collect();
            p.add_row(Relation::Eq, *s, &coeffs);
        }
        for (j, d) in demand.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> = (0..ns).map(|i| (i * nd + j, 1.0)).collect();
            p.add_row(Relation::Eq, *d, &coeffs);
        }
        let s = p.solve().unwrap();
        for i in 0..ns {
            let row: f64 = (0..nd).map(|j| s.value(i * nd + j)).sum();
            assert!((row - supply[i]).abs() < 1e-6);
        }
        for j in 0..nd {
            let col: f64 = (0..ns).map(|i| s.value(i * nd + j)).sum();
            assert!((col - demand[j]).abs() < 1e-6);
        }
        // Optimal cost equals the earth-mover distance between the supply and
        // demand profiles on the line: sum over prefixes of |cum_supply -
        // cum_demand| = 10 + 10 + 15 + 20 = 55.
        assert!((s.objective() - 55.0).abs() < 1e-6, "got {}", s.objective());
    }

    #[test]
    fn capped_transport_shifts_to_second_best() {
        // One source, two sinks; cheap route capped, overflow to expensive.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0); // cheap
        p.set_objective(1, 4.0); // detour
        p.set_upper_bound(0, 6.0);
        p.add_row(Relation::Eq, 10.0, &[(0, 1.0), (1, 1.0)]);
        let s = p.solve().unwrap();
        assert!((s.value(0) - 6.0).abs() < 1e-8);
        assert!((s.value(1) - 4.0).abs() < 1e-8);
        assert!((s.objective() - 22.0).abs() < 1e-8);
    }
}
