//! Property tests: the revised simplex is cross-checked against brute-force
//! enumeration of basic feasible solutions on small random LPs, and its
//! solutions are always verified to satisfy the constraints it was given.

use proptest::prelude::*;

use lowlat_linprog::{LpError, Problem, Relation};

#[derive(Clone, Debug)]
struct TinyLp {
    n: usize,
    c: Vec<f64>,
    /// rows: (coeffs, relation, rhs)
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

fn arb_tiny_lp() -> impl Strategy<Value = TinyLp> {
    let coeff = -4i32..=4;
    (2usize..=4, 1usize..=4).prop_flat_map(move |(n, m)| {
        let c = proptest::collection::vec(-5i32..=5, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(coeff.clone(), n),
                prop_oneof![Just(Relation::Le), Just(Relation::Eq), Just(Relation::Ge)],
                -6i32..=10,
            ),
            m,
        );
        (c, rows).prop_map(move |(c, rows)| TinyLp {
            n,
            c: c.into_iter().map(|v| v as f64).collect(),
            rows: rows
                .into_iter()
                .map(|(co, rel, rhs)| (co.into_iter().map(|v| v as f64).collect(), rel, rhs as f64))
                .collect(),
        })
    })
}

impl TinyLp {
    fn to_problem(&self, bounding_box: f64) -> Problem {
        let mut p = Problem::minimize(self.n);
        for (j, &cj) in self.c.iter().enumerate() {
            p.set_objective(j, cj);
        }
        for (coeffs, rel, rhs) in &self.rows {
            let sparse: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, &v)| (j, v))
                .collect();
            p.add_row(*rel, *rhs, &sparse);
        }
        if bounding_box > 0.0 {
            // Keep every instance bounded so brute force is meaningful.
            let all: Vec<(usize, f64)> = (0..self.n).map(|j| (j, 1.0)).collect();
            p.add_row(Relation::Le, bounding_box, &all);
        }
        p
    }

    /// Brute force over a fine grid of the simplex of feasible points would
    /// be wrong; instead enumerate candidate vertices: solutions of every
    /// square subsystem of active constraints (rows taken at equality +
    /// variables pinned to 0), then filter to feasible and take the best.
    fn brute_force(&self, bounding_box: f64) -> Option<f64> {
        let n = self.n;
        // Build the full inequality system including x >= 0 and the box.
        // Each constraint: a.x (<=,==,>=) b.
        let mut cons: Vec<(Vec<f64>, Relation, f64)> = self.rows.clone();
        let all_one = vec![1.0; n];
        cons.push((all_one, Relation::Le, bounding_box));
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            cons.push((e, Relation::Ge, 0.0));
        }
        let m = cons.len();
        let mut best: Option<f64> = None;
        // Choose n constraints to hold with equality.
        let mut idx: Vec<usize> = (0..n).collect();
        loop {
            if let Some(x) = solve_square(&cons, &idx, n) {
                if feasible(&cons, &x) {
                    let obj: f64 = x.iter().zip(&self.c).map(|(a, b)| a * b).sum();
                    best = Some(match best {
                        Some(b) if b <= obj => b,
                        _ => obj,
                    });
                }
            }
            // Next combination.
            let mut i = n;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                if idx[i] != i + m - n {
                    idx[i] += 1;
                    for k in i + 1..n {
                        idx[k] = idx[k - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

/// Solves the square system formed by taking constraints `idx` at equality.
fn solve_square(cons: &[(Vec<f64>, Relation, f64)], idx: &[usize], n: usize) -> Option<Vec<f64>> {
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n];
    for (r, &ci) in idx.iter().enumerate() {
        for j in 0..n {
            a[r * n + j] = cons[ci].0[j];
        }
        b[r] = cons[ci].2;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let mut piv = col;
        let mut bestv = a[col * n + col].abs();
        for r in col + 1..n {
            if a[r * n + col].abs() > bestv {
                bestv = a[r * n + col].abs();
                piv = r;
            }
        }
        if bestv < 1e-9 {
            return None;
        }
        if piv != col {
            for j in 0..n {
                a.swap(col * n + j, piv * n + j);
            }
            b.swap(col, piv);
        }
        for r in 0..n {
            if r != col {
                let f = a[r * n + col] / a[col * n + col];
                if f != 0.0 {
                    for j in 0..n {
                        a[r * n + j] -= f * a[col * n + j];
                    }
                    b[r] -= f * b[col];
                }
            }
        }
    }
    Some((0..n).map(|i| b[i] / a[i * n + i]).collect())
}

fn feasible(cons: &[(Vec<f64>, Relation, f64)], x: &[f64]) -> bool {
    const TOL: f64 = 1e-6;
    cons.iter().all(|(a, rel, b)| {
        let lhs: f64 = a.iter().zip(x).map(|(ai, xi)| ai * xi).sum();
        match rel {
            Relation::Le => lhs <= b + TOL,
            Relation::Eq => (lhs - b).abs() <= TOL,
            Relation::Ge => lhs >= b - TOL,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplex_matches_brute_force(lp in arb_tiny_lp()) {
        const BOX: f64 = 50.0;
        let p = lp.to_problem(BOX);
        let brute = lp.brute_force(BOX);
        match p.solve() {
            Ok(sol) => {
                let brute = brute.expect("simplex found a solution, brute force must too");
                prop_assert!((sol.objective() - brute).abs() < 1e-5,
                    "objective mismatch: simplex {} vs brute {brute}", sol.objective());
                // Verify the reported point actually satisfies the rows.
                for (coeffs, rel, rhs) in &lp.rows {
                    let lhs: f64 = coeffs.iter().enumerate().map(|(j, v)| v * sol.value(j)).sum();
                    let ok = match rel {
                        Relation::Le => lhs <= rhs + 1e-6,
                        Relation::Eq => (lhs - rhs).abs() <= 1e-6,
                        Relation::Ge => lhs >= rhs - 1e-6,
                    };
                    prop_assert!(ok, "solution violates row {coeffs:?} {rel:?} {rhs}: lhs={lhs}");
                }
                for j in 0..lp.n {
                    prop_assert!(sol.value(j) >= -1e-9);
                }
            }
            Err(LpError::Infeasible) => {
                prop_assert!(brute.is_none(),
                    "simplex says infeasible but brute force found objective {brute:?}");
            }
            Err(LpError::Unbounded) => {
                // Impossible: the bounding box keeps the feasible set compact.
                prop_assert!(false, "bounded instance reported unbounded");
            }
            Err(e) => prop_assert!(false, "solver error {e:?}"),
        }
    }

    #[test]
    fn solutions_respect_nonnegativity_and_rows(lp in arb_tiny_lp()) {
        let p = lp.to_problem(100.0);
        if let Ok(sol) = p.solve() {
            for j in 0..lp.n {
                prop_assert!(sol.value(j) >= -1e-9);
                prop_assert!(sol.value(j).is_finite());
            }
        }
    }

    #[test]
    fn native_bounds_agree_with_cap_rows(
        lp in arb_tiny_lp(),
        bounds in proptest::collection::vec(0u32..12, 4),
    ) {
        // Express per-variable caps once as native bounds, once as rows;
        // the two formulations must agree exactly (status and objective).
        let mut with_bounds = lp.to_problem(50.0);
        let mut with_rows = lp.to_problem(50.0);
        for j in 0..lp.n {
            let u = bounds[j % bounds.len()] as f64;
            with_bounds.set_upper_bound(j, u);
            with_rows.add_row(Relation::Le, u, &[(j, 1.0)]);
        }
        match (with_bounds.solve(), with_rows.solve()) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective() - b.objective()).abs() < 1e-5,
                    "bounds {} vs rows {}", a.objective(), b.objective());
                for j in 0..lp.n {
                    let u = bounds[j % bounds.len()] as f64;
                    prop_assert!(a.value(j) <= u + 1e-7, "bound violated");
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "status mismatch: {a:?} vs {b:?}"),
        }
    }
}
