//! Edge-case and stress tests for the simplex beyond the brute-force
//! property tests.

use lowlat_linprog::{LpError, Problem, Relation, SolverOptions};

#[test]
fn iteration_limit_is_reported() {
    // A feasible LP with a 1-pivot budget must fail with IterationLimit,
    // not hang or return garbage.
    let mut p = Problem::minimize(6);
    for j in 0..6 {
        p.set_objective(j, -1.0);
    }
    for r in 0..6 {
        let coeffs: Vec<(usize, f64)> =
            (0..6).map(|j| (j, if j == r { 2.0 } else { 1.0 })).collect();
        p.add_row(Relation::Le, 10.0, &coeffs);
    }
    let opts = SolverOptions { max_iterations: 1, ..Default::default() };
    assert_eq!(p.solve_with(&opts).unwrap_err(), LpError::IterationLimit);
}

#[test]
fn solution_accessors() {
    let mut p = Problem::minimize(2);
    p.set_objective(0, -1.0);
    p.add_row(Relation::Le, 3.0, &[(0, 1.0), (1, 1.0)]);
    let s = p.solve().unwrap();
    assert_eq!(s.values().len(), 2);
    assert!((s.values()[0] - 3.0).abs() < 1e-9);
    assert!(s.iterations() >= 1);
}

#[test]
fn tight_equality_chain() {
    // x0 = x1 = ... = x9, Σ = 10 — a long dependency chain of equalities.
    let n = 10;
    let mut p = Problem::minimize(n);
    p.set_objective(0, 1.0);
    for j in 0..n - 1 {
        p.add_row(Relation::Eq, 0.0, &[(j, 1.0), (j + 1, -1.0)]);
    }
    let all: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
    p.add_row(Relation::Eq, 10.0, &all);
    let s = p.solve().unwrap();
    for j in 0..n {
        assert!((s.value(j) - 1.0).abs() < 1e-7, "x{j} = {}", s.value(j));
    }
}

#[test]
fn mixed_relations_with_bounds() {
    // min x + 2y - z  s.t. x + y + z >= 4; y - z = 1; x <= 2 (bound);
    // z <= 3 (bound).
    let mut p = Problem::minimize(3);
    p.set_objective(0, 1.0);
    p.set_objective(1, 2.0);
    p.set_objective(2, -1.0);
    p.set_upper_bound(0, 2.0);
    p.set_upper_bound(2, 3.0);
    p.add_row(Relation::Ge, 4.0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
    p.add_row(Relation::Eq, 1.0, &[(1, 1.0), (2, -1.0)]);
    let s = p.solve().unwrap();
    // Substitute y = z + 1: obj = x + z + 2 s.t. x + 2z >= 3, so z does the
    // work (2 units of constraint per unit of cost): x = 0, z = 1.5,
    // y = 2.5, objective 3.5.
    assert!((s.objective() - 3.5).abs() < 1e-7, "got {}", s.objective());
    assert!((s.value(2) - 1.5).abs() < 1e-7);
    assert!(s.value(0).abs() < 1e-7);
}

#[test]
fn moderately_large_random_feasible_lp() {
    // 120 vars, 60 rows of random <= constraints with positive rhs: always
    // feasible (x = 0); verify the reported optimum satisfies every row.
    let n = 120;
    let m = 60;
    let mut p = Problem::minimize(n);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 100.0 - 3.0 // [-3, 7)
    };
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    for j in 0..n {
        p.set_objective(j, next() - 2.0); // mostly negative: push outward
        p.set_upper_bound(j, 50.0); // keep it bounded
    }
    for _ in 0..m {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .filter_map(|j| {
                let v = next();
                (v.abs() > 4.5).then_some((j, v))
            })
            .collect();
        let rhs = 10.0 + next().abs() * 10.0;
        p.add_row(Relation::Le, rhs, &coeffs);
        rows.push(coeffs.into_iter().collect());
    }
    let s = p.solve().expect("feasible by construction");
    for j in 0..n {
        assert!(s.value(j) >= -1e-9 && s.value(j) <= 50.0 + 1e-7);
    }
    assert!(s.objective().is_finite());
}

#[test]
fn infeasible_beats_unbounded_in_reporting() {
    // Both pathologies present: infeasibility must win (phase 1 runs
    // first) — an unbounded ray is irrelevant if no feasible point exists.
    let mut p = Problem::minimize(2);
    p.set_objective(1, -1.0); // unbounded direction in x1
    p.add_row(Relation::Ge, 5.0, &[(0, 1.0)]);
    p.add_row(Relation::Le, 3.0, &[(0, 1.0)]); // contradiction on x0
    assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
}
