//! Warm-start correctness: `solve_warm` must always agree with the cold
//! `solve` on the objective, whatever state the [`Basis`] handle is in —
//! fresh, optimal for the same problem, optimal for a neighboring problem,
//! stale in shape, or downright singular under the new data.

use proptest::prelude::*;

use lowlat_linprog::{Basis, Problem, Relation};

/// Relative-ish tolerance: the issue's 1e-9, scaled by objective magnitude.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn warm_resolve_of_identical_problem_is_pivot_free() {
    let mut p = Problem::minimize(3);
    p.set_objective(0, -2.0);
    p.set_objective(1, -3.0);
    p.set_objective(2, 1.0);
    p.add_row(Relation::Le, 10.0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
    p.add_row(Relation::Le, 6.0, &[(0, 1.0), (1, 2.0)]);
    let mut basis = Basis::new();
    let cold = p.solve_warm(&mut basis).unwrap();
    assert!(!cold.warm_started(), "fresh handle must solve cold");
    assert!(basis.is_warm(), "cold solve must export its basis");
    let warm = p.solve_warm(&mut basis).unwrap();
    assert!(warm.warm_started());
    assert_eq!(warm.iterations(), 0, "restarting at the optimum needs no pivots");
    assert!(close(cold.objective(), warm.objective()));
}

#[test]
fn warm_chain_tracks_rhs_drift() {
    // The deployment-cycle shape: the same transport LP re-solved minute
    // after minute with slightly different demands.
    let (ns, nd) = (4usize, 5usize);
    let mut basis = Basis::new();
    for minute in 0..12u64 {
        let mut p = Problem::minimize(ns * nd);
        for i in 0..ns {
            for j in 0..nd {
                p.set_objective(i * nd + j, (i as f64 - j as f64).abs() + 1.0);
            }
        }
        // Inequality (full-row-rank) transport: supplies cap the rows,
        // demands must be met. The equality form's redundant row would keep
        // an artificial basic and block basis export; this form never does.
        let drift = |k: u64| 1.0 + 0.03 * (((minute * 7 + k) % 5) as f64 - 2.0);
        let supplies: Vec<f64> = (0..ns as u64).map(|i| (20.0 + i as f64) * drift(i)).collect();
        let total: f64 = supplies.iter().sum();
        for (i, s) in supplies.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> = (0..nd).map(|j| (i * nd + j, 1.0)).collect();
            p.add_row(Relation::Le, *s, &coeffs);
        }
        for j in 0..nd {
            let coeffs: Vec<(usize, f64)> = (0..ns).map(|i| (i * nd + j, 1.0)).collect();
            p.add_row(Relation::Ge, 0.8 * total / nd as f64, &coeffs);
        }
        let warm = p.solve_warm(&mut basis).unwrap();
        let cold = p.solve().unwrap();
        assert!(
            close(warm.objective(), cold.objective()),
            "minute {minute}: warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
        if minute > 0 {
            assert!(
                warm.warm_started(),
                "minute {minute} should restart from minute {}",
                minute - 1
            );
        }
    }
}

#[test]
fn shape_mismatch_falls_back_to_cold() {
    let mut small = Problem::minimize(2);
    small.set_objective(0, -1.0);
    small.add_row(Relation::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
    let mut basis = Basis::new();
    small.solve_warm(&mut basis).unwrap();
    assert!(basis.is_warm());

    // Different row/column count: the stored basis cannot apply.
    let mut big = Problem::minimize(3);
    big.set_objective(0, -1.0);
    big.set_objective(2, -1.0);
    big.add_row(Relation::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
    big.add_row(Relation::Le, 2.0, &[(2, 1.0)]);
    let warm = big.solve_warm(&mut basis).unwrap();
    assert!(!warm.warm_started(), "mismatched shape must degrade to cold");
    assert!(close(warm.objective(), big.solve().unwrap().objective()));
}

#[test]
fn infeasible_stale_basis_is_repaired() {
    // P1 leaves x basic at 5; P2 has the same shape but caps x at 3, so the
    // restored vertex violates its bound. The dual-repair pass fixes it (or
    // the solve degrades to cold) — either way the answer must be exact.
    let mut p1 = Problem::minimize(2);
    p1.set_objective(0, -1.0);
    p1.add_row(Relation::Le, 5.0, &[(0, 1.0), (1, 1.0)]);
    let mut basis = Basis::new();
    p1.solve_warm(&mut basis).unwrap();

    let mut p2 = Problem::minimize(2);
    p2.set_objective(0, -1.0);
    p2.set_upper_bound(0, 3.0);
    p2.add_row(Relation::Le, 5.0, &[(0, 1.0), (1, 1.0)]);
    let warm = p2.solve_warm(&mut basis).unwrap();
    assert!((warm.value(0) - 3.0).abs() < 1e-8);
    assert!(close(warm.objective(), -3.0));
}

#[test]
fn singular_degenerate_basis_falls_back_to_cold() {
    // P1's optimum makes both structural columns basic (B = I). P2 keeps
    // the shape but makes those two columns identical, so the restored
    // basis matrix is singular and refactorization must reject it.
    let mut p1 = Problem::minimize(2);
    p1.set_objective(0, -1.0);
    p1.set_objective(1, -1.0);
    p1.add_row(Relation::Le, 3.0, &[(0, 1.0)]);
    p1.add_row(Relation::Le, 3.0, &[(1, 1.0)]);
    let mut basis = Basis::new();
    let s1 = p1.solve_warm(&mut basis).unwrap();
    assert!(close(s1.objective(), -6.0));

    let mut p2 = Problem::minimize(2);
    p2.set_objective(0, -1.0);
    p2.set_objective(1, -1.0);
    p2.add_row(Relation::Le, 3.0, &[(0, 1.0), (1, 1.0)]);
    p2.add_row(Relation::Le, 3.0, &[(0, 1.0), (1, 1.0)]);
    let warm = p2.solve_warm(&mut basis).unwrap();
    assert!(!warm.warm_started(), "singular basis must degrade to cold");
    assert!(close(warm.objective(), -3.0));
}

#[test]
fn cleared_handle_solves_cold_again() {
    let mut p = Problem::minimize(1);
    p.set_objective(0, -1.0);
    p.add_row(Relation::Le, 2.0, &[(0, 1.0)]);
    let mut basis = Basis::new();
    p.solve_warm(&mut basis).unwrap();
    basis.clear();
    assert!(!basis.is_warm());
    let again = p.solve_warm(&mut basis).unwrap();
    assert!(!again.warm_started());
    assert!(basis.is_warm(), "clear + solve re-exports");
}

/// A guaranteed-feasible LP: right-hand sides are derived from a known
/// interior point, and a bounding-box row keeps the optimum finite.
#[derive(Clone, Debug)]
struct FeasibleLp {
    n: usize,
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

impl FeasibleLp {
    fn to_problem(&self) -> Problem {
        let mut p = Problem::minimize(self.n);
        for (j, &cj) in self.c.iter().enumerate() {
            p.set_objective(j, cj);
        }
        for (coeffs, rel, rhs) in &self.rows {
            let sparse: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, &v)| (j, v))
                .collect();
            p.add_row(*rel, *rhs, &sparse);
        }
        // Bounding box: keeps every instance bounded (and stays feasible at
        // the witness point, whose coordinates are at most 3 each).
        let all: Vec<(usize, f64)> = (0..self.n).map(|j| (j, 1.0)).collect();
        p.add_row(Relation::Le, 50.0, &all);
        p
    }
}

/// Two same-shape feasible LPs — "minute t" and "minute t+1".
fn arb_feasible_pair() -> impl Strategy<Value = (FeasibleLp, FeasibleLp)> {
    (2usize..=4, 1usize..=4).prop_flat_map(|(n, m)| {
        let coeffs = proptest::collection::vec(proptest::collection::vec(-4i32..=4, n), m);
        let rels = proptest::collection::vec(
            prop_oneof![Just(Relation::Le), Just(Relation::Eq), Just(Relation::Ge)],
            m,
        );
        let witness1 = proptest::collection::vec(0i32..=3, n);
        let witness2 = proptest::collection::vec(0i32..=3, n);
        let slacks = proptest::collection::vec(0i32..=5, m);
        let c1 = proptest::collection::vec(-5i32..=5, n);
        let c2 = proptest::collection::vec(-5i32..=5, n);
        ((coeffs, rels, slacks), (witness1, c1), (witness2, c2)).prop_map(
            move |((coeffs, rels, slacks), (w1, c1), (w2, c2))| {
                let build = |witness: &[i32], c: &[i32]| {
                    let rows = coeffs
                        .iter()
                        .zip(&rels)
                        .zip(&slacks)
                        .map(|((a, rel), &slack)| {
                            let dot: f64 =
                                a.iter().zip(witness).map(|(&ai, &xi)| ai as f64 * xi as f64).sum();
                            let rhs = match rel {
                                Relation::Le => dot + slack as f64,
                                Relation::Eq => dot,
                                Relation::Ge => dot - slack as f64,
                            };
                            (a.iter().map(|&v| v as f64).collect(), *rel, rhs)
                        })
                        .collect();
                    FeasibleLp { n, c: c.iter().map(|&v| v as f64).collect(), rows }
                };
                (build(&w1, &c1), build(&w2, &c2))
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole invariant: warm-starting minute t+1 from minute t's
    /// basis reaches the same objective as a cold solve of minute t+1.
    #[test]
    fn warm_and_cold_agree_on_random_feasible_problems(
        (lp1, lp2) in arb_feasible_pair()
    ) {
        let p1 = lp1.to_problem();
        let p2 = lp2.to_problem();
        let mut basis = Basis::new();
        p1.solve_warm(&mut basis).expect("feasible by construction");
        let warm = p2.solve_warm(&mut basis).expect("feasible by construction");
        let cold = p2.solve().expect("feasible by construction");
        prop_assert!(
            close(warm.objective(), cold.objective()),
            "warm {} vs cold {} (warm_started {})",
            warm.objective(), cold.objective(), warm.warm_started()
        );
        // The warm solution must satisfy the rows it claims to solve.
        for (coeffs, rel, rhs) in &lp2.rows {
            let lhs: f64 = coeffs.iter().enumerate().map(|(j, v)| v * warm.value(j)).sum();
            let ok = match rel {
                Relation::Le => lhs <= rhs + 1e-6,
                Relation::Eq => (lhs - rhs).abs() <= 1e-6,
                Relation::Ge => lhs >= rhs - 1e-6,
            };
            prop_assert!(ok, "warm solution violates {coeffs:?} {rel:?} {rhs}: lhs={lhs}");
        }
        for j in 0..lp2.n {
            prop_assert!(warm.value(j) >= -1e-9);
        }
    }

    /// Re-solving the *same* instance warm is exact and pivot-free.
    #[test]
    fn warm_self_resolve_is_exact((lp, _) in arb_feasible_pair()) {
        let p = lp.to_problem();
        let mut basis = Basis::new();
        let cold = p.solve_warm(&mut basis).expect("feasible by construction");
        let warm = p.solve_warm(&mut basis).expect("feasible by construction");
        prop_assert!(close(cold.objective(), warm.objective()));
        if basis.is_warm() {
            prop_assert!(warm.warm_started());
        }
    }
}
