//! The statistical-multiplexing admission tests of Figure 14.
//!
//! Given the set of aggregates the optimizer proposes to place on a link
//! (each represented by its last-minute 100 ms samples, scaled by the
//! fraction routed over this link), decide whether they will multiplex
//! without building queues beyond the allowance:
//!
//! * **Fast path** — if the *sum of peaks* fits in the capacity, nothing to
//!   test: both tests are guaranteed to pass (paper §5).
//! * **Test B (temporal correlation)** — sum the series bin-by-bin and run
//!   the carried-over queue; reject if the backlog ever implies more than
//!   `max_queue_ms` of queueing delay. Catches synchronized bursts.
//! * **Test C (uncorrelated tails)** — convolve the per-aggregate PMFs and
//!   reject if P(sum > capacity) exceeds `max_queue_ms / window`; with the
//!   paper's 10 ms over 60 s that threshold is 10/60000 ≈ 0.00016.

use crate::pmf::{convolve_group, DEFAULT_LEVELS};

/// Tuning for [`MultiplexCheck`].
#[derive(Clone, Debug)]
pub struct MultiplexConfig {
    /// Maximum transient queueing delay we are willing to admit (ms).
    pub max_queue_ms: f64,
    /// Duration of one 100 ms sample bin, in ms (100 for real traces).
    pub bin_ms: f64,
    /// PMF quantization levels for test C.
    pub levels: usize,
}

impl Default for MultiplexConfig {
    fn default() -> Self {
        MultiplexConfig { max_queue_ms: 10.0, bin_ms: 100.0, levels: DEFAULT_LEVELS }
    }
}

/// Outcome of the admission tests for one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// The aggregates multiplex acceptably.
    Pass,
    /// Test B failed: correlated bursts build a queue of this many ms.
    FailTemporal {
        /// Worst queueing delay implied by the summed series.
        max_queue_ms: f64,
    },
    /// Test C failed: the convolved tail exceeds the allowance.
    FailTail {
        /// P(sum of rates > capacity).
        prob: f64,
        /// The admission threshold it was compared against.
        threshold: f64,
    },
}

impl Verdict {
    /// True for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }
}

/// The link-level admission check.
#[derive(Clone, Debug, Default)]
pub struct MultiplexCheck {
    config: MultiplexConfig,
}

impl MultiplexCheck {
    /// Creates a check with the given configuration.
    pub fn new(config: MultiplexConfig) -> Self {
        assert!(config.max_queue_ms > 0.0 && config.bin_ms > 0.0 && config.levels > 1);
        MultiplexCheck { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiplexConfig {
        &self.config
    }

    /// Tests whether the given aggregates fit on a link of
    /// `capacity_mbps`. `series` holds one slice of 100 ms samples (Mbps)
    /// per aggregate, already scaled by the fraction placed on this link;
    /// all slices must have equal length.
    ///
    /// # Panics
    /// Panics on ragged series or non-positive capacity.
    pub fn check_link(&self, capacity_mbps: f64, series: &[&[f64]]) -> Verdict {
        assert!(capacity_mbps > 0.0);
        if series.is_empty() {
            return Verdict::Pass;
        }
        let len = series[0].len();
        assert!(series.iter().all(|s| s.len() == len), "ragged sample series");
        assert!(len > 0, "empty sample series");

        // Fast path: sum of peaks fits.
        let sum_of_peaks: f64 = series.iter().map(|s| s.iter().cloned().fold(0.0, f64::max)).sum();
        if sum_of_peaks <= capacity_mbps {
            return Verdict::Pass;
        }

        // Test B: temporal correlation via carried-over queue.
        let bin_s = self.config.bin_ms / 1000.0;
        let mut backlog_mb = 0.0f64;
        let mut worst_queue_ms = 0.0f64;
        for i in 0..len {
            let load: f64 = series.iter().map(|s| s[i]).sum();
            backlog_mb = (backlog_mb + (load - capacity_mbps) * bin_s).max(0.0);
            worst_queue_ms = worst_queue_ms.max(backlog_mb / capacity_mbps * 1000.0);
        }
        if worst_queue_ms > self.config.max_queue_ms {
            return Verdict::FailTemporal { max_queue_ms: worst_queue_ms };
        }

        // Test C: independent-tail probability via convolution.
        let threshold = self.config.max_queue_ms / (len as f64 * self.config.bin_ms);
        let pmf = convolve_group(series, self.config.levels)
            .expect("non-empty series with positive peaks");
        let prob = pmf.prob_exceeds(capacity_mbps);
        if prob > threshold {
            return Verdict::FailTail { prob, threshold };
        }
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check() -> MultiplexCheck {
        MultiplexCheck::new(MultiplexConfig::default())
    }

    #[test]
    fn fast_path_constant_flows() {
        let s1 = vec![30.0; 600];
        let s2 = vec![40.0; 600];
        assert_eq!(check().check_link(100.0, &[&s1, &s2]), Verdict::Pass);
    }

    #[test]
    fn correlated_bursts_fail_temporal() {
        // Two flows bursting in the same bins, well over capacity for 2 s.
        let mut s = vec![30.0; 600];
        for i in 100..120 {
            s[i] = 120.0;
        }
        let v = check().check_link(100.0, &[&s.clone(), &s]);
        match v {
            Verdict::FailTemporal { max_queue_ms } => assert!(max_queue_ms > 10.0),
            other => panic!("expected temporal failure, got {other:?}"),
        }
    }

    #[test]
    fn anticorrelated_bursts_pass_temporal_but_may_fail_tail() {
        // Same marginal distributions as above but bursts never overlap:
        // the temporal test passes; the convolution test (which assumes
        // independence) is the one that must catch residual tail risk.
        let mut s1 = vec![30.0; 600];
        let mut s2 = vec![30.0; 600];
        for i in 0..60 {
            s1[i] = 90.0; // first 6 s
            s2[599 - i] = 90.0; // last 6 s
        }
        let v = check().check_link(125.0, &[&s1, &s2]);
        // Peaks sum to 180 > 125, so the fast path doesn't apply; the
        // summed series never exceeds 120 < 125 so test B passes; test C
        // sees P(both "bursting") = 0.01 >> 0.0016 allowance and fails.
        match v {
            Verdict::FailTail { prob, threshold } => {
                assert!(prob > threshold);
                assert!((prob - 0.01).abs() < 0.01, "prob {prob}");
            }
            other => panic!("expected tail failure, got {other:?}"),
        }
    }

    #[test]
    fn independent_small_tails_pass() {
        // Bursts are rare (0.5%) and the capacity absorbs one burst, so
        // only simultaneous bursts exceed it: P ≈ 2.5e-5 < 1.6e-4.
        let mut s1 = vec![30.0; 600];
        let mut s2 = vec![30.0; 600];
        for i in 0..3 {
            s1[i * 200] = 60.0;
            s2[i * 200 + 100] = 60.0;
        }
        let v = check().check_link(95.0, &[&s1, &s2]);
        assert_eq!(v, Verdict::Pass, "got {v:?}");
    }

    #[test]
    fn single_flow_over_capacity_fails() {
        let s = vec![120.0; 600];
        let v = check().check_link(100.0, &[&s]);
        assert!(!v.passed());
    }

    #[test]
    fn empty_link_passes() {
        assert_eq!(check().check_link(10.0, &[]), Verdict::Pass);
    }

    #[test]
    fn queue_drains_between_small_bursts() {
        // A burst of exactly one bin at 2x capacity implies 100 ms of
        // excess = 100ms * (load-cap)/cap = 50 ms queue -> fail; but a tiny
        // overage of 5% for one bin is only 5 ms -> test B passes.
        let mut s = vec![50.0; 600];
        s[300] = 105.0;
        let v = check().check_link(100.0, &[&s]);
        // Fast path: peak 105 > 100, so tests run. Test B: backlog
        // (105-100)*0.1 = 0.5 Mb -> 5 ms <= 10 ms. Test C: P(>100) =
        // 1/600 = 0.0017 > 0.00016 -> tail failure.
        match v {
            Verdict::FailTail { .. } => {}
            other => panic!("expected tail failure, got {other:?}"),
        }
    }
}
