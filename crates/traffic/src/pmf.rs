//! Probability mass functions over bitrate, quantized for FFT convolution.
//!
//! The paper treats each aggregate's 100 ms bandwidth measurements as a PMF
//! and, per link, convolves the PMFs of the aggregates sharing that link to
//! get the distribution of their *sum* (they are assumed independent once
//! temporal correlation has been tested separately). 1024 quantization
//! levels "yields good performance" (§5); that is our default too.

use crate::fft::convolve;

/// Default quantization levels, per the paper.
pub const DEFAULT_LEVELS: usize = 1024;

/// A PMF over bitrate on a uniform grid: `probs[i]` is the probability of
/// the rate falling in bin `i`, bins are `bin_width` Mbps wide starting
/// at 0.
#[derive(Clone, Debug)]
pub struct Pmf {
    bin_width: f64,
    probs: Vec<f64>,
}

impl Pmf {
    /// Quantizes samples onto `levels` bins of width `bin_width`.
    /// Samples above the grid are clamped into the last bin.
    ///
    /// # Panics
    /// Panics on an empty sample set, non-positive width, or zero levels.
    pub fn from_samples(samples: &[f64], bin_width: f64, levels: usize) -> Self {
        assert!(!samples.is_empty(), "empty sample set");
        assert!(bin_width > 0.0 && levels > 0);
        let mut probs = vec![0.0; levels];
        let w = 1.0 / samples.len() as f64;
        for &s in samples {
            let bin = ((s / bin_width) as usize).min(levels - 1);
            probs[bin] += w;
        }
        Pmf { bin_width, probs }
    }

    /// Builds a PMF with explicit probabilities (testing / composition).
    ///
    /// # Panics
    /// Panics if probabilities are negative or don't sum to ~1.
    pub fn from_probs(probs: Vec<f64>, bin_width: f64) -> Self {
        assert!(bin_width > 0.0);
        assert!(probs.iter().all(|&p| p >= -1e-12));
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}");
        Pmf { bin_width, probs }
    }

    /// Bin width in Mbps.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// The probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mean of the distribution (Mbps), using the lower-edge convention
    /// (`bin i` represents rate `i * bin_width`). Lower edges make means
    /// *exactly* additive under convolution, since convolution adds bin
    /// indices.
    pub fn mean(&self) -> f64 {
        self.probs.iter().enumerate().map(|(i, &p)| i as f64 * self.bin_width * p).sum()
    }

    /// P(rate > threshold). Bins are attributed by their upper edge, which
    /// over-counts by at most one bin — conservative in the direction the
    /// admission test cares about.
    pub fn prob_exceeds(&self, threshold_mbps: f64) -> f64 {
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            let upper = (i as f64 + 1.0) * self.bin_width;
            if upper > threshold_mbps {
                acc += p;
            }
        }
        acc.min(1.0)
    }

    /// Distribution of the sum of two independent rates (same grid).
    ///
    /// # Panics
    /// Panics when grids differ.
    pub fn convolve_with(&self, other: &Pmf) -> Pmf {
        assert!(
            (self.bin_width - other.bin_width).abs() < 1e-9 * self.bin_width.max(other.bin_width),
            "convolving PMFs on different grids"
        );
        let probs = convolve(&self.probs, &other.probs);
        Pmf { bin_width: self.bin_width, probs }
    }
}

/// Convolves the PMFs of many aggregates sharing a link, on a common grid
/// sized so the sum of peaks fits: the Figure-14 test C workhorse.
///
/// `sample_sets` holds per-aggregate 100 ms samples *already scaled* by the
/// fraction of that aggregate placed on the link.
pub fn convolve_group(sample_sets: &[&[f64]], levels: usize) -> Option<Pmf> {
    if sample_sets.is_empty() {
        return None;
    }
    let sum_of_peaks: f64 = sample_sets.iter().map(|s| s.iter().cloned().fold(0.0, f64::max)).sum();
    if sum_of_peaks <= 0.0 {
        return None;
    }
    // The summed support must fit inside the final grid; individual PMFs use
    // the same bin width so convolution is exact on the grid.
    let bin_width = sum_of_peaks / (levels as f64 - 1.0);
    let mut acc: Option<Pmf> = None;
    for s in sample_sets {
        let pmf = Pmf::from_samples(s, bin_width, levels);
        acc = Some(match acc {
            None => pmf,
            Some(a) => a.convolve_with(&pmf),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_and_mean() {
        let samples = vec![0.5, 1.5, 2.5, 3.5];
        let pmf = Pmf::from_samples(&samples, 1.0, 8);
        assert!((pmf.probs()[0] - 0.25).abs() < 1e-12);
        // Lower-edge convention: bins 0..=3 each with mass 1/4.
        assert!((pmf.mean() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn clamping_into_last_bin() {
        let pmf = Pmf::from_samples(&[100.0], 1.0, 4);
        assert!((pmf.probs()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_exceeds_basics() {
        let pmf = Pmf::from_probs(vec![0.5, 0.3, 0.2], 10.0);
        // Bins cover (0,10], (10,20], (20,30].
        assert!((pmf.prob_exceeds(10.0) - 0.5).abs() < 1e-12);
        assert!((pmf.prob_exceeds(25.0) - 0.2).abs() < 1e-12);
        assert_eq!(pmf.prob_exceeds(30.0), 0.0);
        assert_eq!(pmf.prob_exceeds(0.0), 1.0);
    }

    #[test]
    fn convolution_adds_means() {
        let a = Pmf::from_probs(vec![0.5, 0.5], 1.0);
        let b = Pmf::from_probs(vec![0.25, 0.75], 1.0);
        let c = a.convolve_with(&b);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-9);
        let total: f64 = c.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_convolution_two_constant_flows() {
        // Two constant 5 Mbps flows: their sum is constant 10 Mbps.
        let s1 = vec![5.0; 100];
        let s2 = vec![5.0; 100];
        let pmf = convolve_group(&[&s1, &s2], 1024).unwrap();
        assert!(pmf.prob_exceeds(11.0) < 1e-9, "sum never exceeds 10");
        assert!(pmf.prob_exceeds(9.0) > 0.99, "sum is always ~10");
    }

    #[test]
    fn group_convolution_detects_tail() {
        // A bursty flow: 10% of the time it doubles; pair of them exceeds
        // 2.2x base more than ~1% - (independent) - of the time.
        let mut s = vec![10.0; 90];
        s.extend(vec![20.0; 10]);
        let pmf = convolve_group(&[&s, &s], 1024).unwrap();
        let p = pmf.prob_exceeds(30.0);
        assert!((p - 0.01).abs() < 0.005, "P(both burst) ~ 0.01, got {p}");
    }

    #[test]
    fn empty_group_is_none() {
        assert!(convolve_group(&[], 1024).is_none());
    }
}
