//! Per-aggregate traffic traces and the synthetic CAIDA-like generator.
//!
//! The paper measures two properties on CAIDA's Tier-1 backbone traces
//! (four 10 Gb/s links, 40 one-hour traces each, 1-3 Gb/s mean):
//!
//! 1. minute-to-minute mean rates are predictable (Algorithm 1 overshoots
//!    only ~0.5% of the time — Figure 9);
//! 2. the within-minute standard deviation of 1 ms bitrates barely changes
//!    from one minute to the next (Figure 10).
//!
//! The traces themselves are not redistributable, so [`synthesize`] builds
//! series with exactly these properties by construction: a slow
//! mean-reverting random walk for minute means, lognormal burst noise with
//! AR(1) temporal correlation inside each minute, and a slowly drifting
//! burst variance. The violation rates are controllable, so tests can probe
//! both the passing and failing regimes of the multiplexing checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`synthesize`].
#[derive(Clone, Debug)]
pub struct TraceGenConfig {
    /// Long-run mean rate (Mbps). CAIDA's links run 1000-3000.
    pub mean_mbps: f64,
    /// Maximum relative drift of the minute mean per minute (Google's WAN
    /// paper reports < 10%; default 0.05).
    pub minute_drift: f64,
    /// Coefficient of variation of the 100 ms samples around the minute
    /// mean (burstiness). Default 0.25.
    pub cv: f64,
    /// AR(1) coefficient of the burst noise inside a minute, creating the
    /// short-range dependence real traffic shows. Default 0.5.
    pub ar1: f64,
    /// Relative drift of the burst σ per minute; small, so σ(t) ≈ σ(t+1)
    /// as in Figure 10. Default 0.05.
    pub sigma_drift: f64,
    /// Number of minutes to generate. The paper uses one-hour traces.
    pub minutes: usize,
    /// 100 ms bins per minute (600 for real time).
    pub bins_per_minute: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative amplitude of the diurnal swing multiplying every minute's
    /// samples: minute `m` is scaled by
    /// `1 + amplitude * sin(2π m / period + phase)`. 0 (the default)
    /// disables the cycle and reproduces the stationary generator
    /// bit-for-bit. Must stay in `[0, 1)` so rates remain positive.
    pub diurnal_amplitude: f64,
    /// Diurnal period in minutes (1440 = one day). Ignored when the
    /// amplitude is 0.
    pub diurnal_period_minutes: usize,
    /// Phase offset of the diurnal cycle in radians (shifts where in the
    /// day the trace starts). Ignored when the amplitude is 0.
    pub diurnal_phase: f64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            mean_mbps: 2000.0,
            minute_drift: 0.05,
            cv: 0.25,
            ar1: 0.5,
            sigma_drift: 0.05,
            minutes: 60,
            bins_per_minute: 600,
            seed: 1,
            diurnal_amplitude: 0.0,
            diurnal_period_minutes: 1440,
            diurnal_phase: 0.0,
        }
    }
}

/// A traffic time series: consecutive minutes of 100 ms rate samples.
#[derive(Clone, Debug)]
pub struct AggregateTrace {
    bins_per_minute: usize,
    /// All samples, minute-major: `samples[m * bins_per_minute + i]`, Mbps.
    samples_mbps: Vec<f64>,
}

impl AggregateTrace {
    /// Wraps raw samples.
    ///
    /// # Panics
    /// Panics if the sample count is not a whole number of minutes or any
    /// sample is negative/non-finite.
    pub fn from_samples(samples_mbps: Vec<f64>, bins_per_minute: usize) -> Self {
        assert!(bins_per_minute > 0);
        assert_eq!(samples_mbps.len() % bins_per_minute, 0, "ragged trace");
        assert!(samples_mbps.iter().all(|s| s.is_finite() && *s >= 0.0));
        AggregateTrace { bins_per_minute, samples_mbps }
    }

    /// Number of whole minutes.
    pub fn minutes(&self) -> usize {
        self.samples_mbps.len() / self.bins_per_minute
    }

    /// 100 ms bins per minute.
    pub fn bins_per_minute(&self) -> usize {
        self.bins_per_minute
    }

    /// The 100 ms samples of minute `m`.
    pub fn samples(&self, m: usize) -> &[f64] {
        let start = m * self.bins_per_minute;
        &self.samples_mbps[start..start + self.bins_per_minute]
    }

    /// Mean rate over minute `m` (Mbps).
    pub fn minute_mean(&self, m: usize) -> f64 {
        let s = self.samples(m);
        s.iter().sum::<f64>() / s.len() as f64
    }

    /// All per-minute means.
    pub fn minute_means(&self) -> Vec<f64> {
        (0..self.minutes()).map(|m| self.minute_mean(m)).collect()
    }

    /// Peak 100 ms rate within minute `m`.
    pub fn peak(&self, m: usize) -> f64 {
        self.samples(m).iter().cloned().fold(0.0, f64::max)
    }

    /// Standard deviation of the 100 ms rates within minute `m` — the σ of
    /// Figure 10.
    pub fn sigma(&self, m: usize) -> f64 {
        let s = self.samples(m);
        let mean = self.minute_mean(m);
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64;
        var.sqrt()
    }

    /// The first `minutes` of the trace — what a controller has *seen* at
    /// decision time (used by the timeline simulator to avoid peeking).
    ///
    /// # Panics
    /// Panics if `minutes` is 0 or exceeds the trace length.
    pub fn truncated(&self, minutes: usize) -> AggregateTrace {
        assert!(minutes >= 1 && minutes <= self.minutes(), "bad prefix {minutes}");
        AggregateTrace {
            bins_per_minute: self.bins_per_minute,
            samples_mbps: self.samples_mbps[..minutes * self.bins_per_minute].to_vec(),
        }
    }
}

/// Draws one standard normal via Box-Muller.
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a synthetic trace per [`TraceGenConfig`] (deterministic).
pub fn synthesize(config: &TraceGenConfig) -> AggregateTrace {
    assert!(config.mean_mbps > 0.0 && config.cv >= 0.0);
    assert!((0.0..1.0).contains(&config.ar1.abs()) || config.ar1.abs() < 1.0);
    assert!(
        (0.0..1.0).contains(&config.diurnal_amplitude),
        "diurnal amplitude {} out of [0,1)",
        config.diurnal_amplitude
    );
    assert!(
        config.diurnal_amplitude == 0.0 || config.diurnal_period_minutes >= 2,
        "diurnal period must span at least 2 minutes"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7472_6163);
    let mut samples = Vec::with_capacity(config.minutes * config.bins_per_minute);

    let mut minute_mean = config.mean_mbps;
    let mut sigma_rel = config.cv;
    // AR(1) state carries across minute boundaries: bursts don't reset on
    // the minute, only our bookkeeping does.
    let mut z = 0.0f64;
    let innov = (1.0 - config.ar1 * config.ar1).sqrt();
    for minute in 0..config.minutes {
        // The long-horizon load shape: a deterministic multiplicative swing
        // on top of the stationary walk, so hundreds-of-minutes runs see
        // the peak/trough asymmetry real WANs replan around. Amplitude 0
        // skips the factor entirely (bit-identical to the old generator).
        let diurnal = if config.diurnal_amplitude > 0.0 {
            1.0 + config.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * minute as f64
                    / config.diurnal_period_minutes as f64
                    + config.diurnal_phase)
                    .sin()
        } else {
            1.0
        };
        // Mean-reverting random walk for the minute mean.
        let drift = rng.gen_range(-config.minute_drift..=config.minute_drift);
        let reversion = 0.05 * (config.mean_mbps - minute_mean) / config.mean_mbps;
        minute_mean = (minute_mean * (1.0 + drift + reversion))
            .clamp(0.2 * config.mean_mbps, 3.0 * config.mean_mbps);
        // σ drifts slowly (Figure 10's x≈y clustering).
        let sdrift = rng.gen_range(-config.sigma_drift..=config.sigma_drift);
        sigma_rel = (sigma_rel * (1.0 + sdrift)).clamp(0.25 * config.cv, 4.0 * config.cv);

        for _ in 0..config.bins_per_minute {
            z = config.ar1 * z + innov * std_normal(&mut rng);
            // Lognormal-style positive noise with unit mean.
            let s = sigma_rel;
            let factor = (s * z - s * s / 2.0).exp();
            samples.push(minute_mean * diurnal * factor);
        }
    }
    AggregateTrace::from_samples(samples, config.bins_per_minute)
}

/// Decorrelates indexed streams sharing one base seed (golden-ratio
/// spread): stream `idx`'s RNG seed. The single definition behind the
/// CAIDA-like corpus here and the timeline controller's per-aggregate
/// traces — one formula, so a corpus and a timeline run with the same base
/// seed stay reproducible against each other.
pub fn spread_seed(seed: u64, idx: u64) -> u64 {
    seed.wrapping_add(idx).wrapping_mul(0x9E37_79B9)
}

/// A CAIDA-like trace set: `links x traces_per_link` one-hour traces with
/// means spread over 1-3 Gb/s, deterministic in `seed` — the corpus behind
/// Figures 9 and 10.
pub fn caida_like_traces(links: usize, traces_per_link: usize, seed: u64) -> Vec<AggregateTrace> {
    let mut out = Vec::with_capacity(links * traces_per_link);
    for l in 0..links {
        for t in 0..traces_per_link {
            let idx = (l * traces_per_link + t) as u64;
            let mut rng = StdRng::seed_from_u64(spread_seed(seed, idx));
            let mean = rng.gen_range(1000.0..3000.0);
            let cv = rng.gen_range(0.15..0.4);
            out.push(synthesize(&TraceGenConfig {
                mean_mbps: mean,
                cv,
                seed: seed ^ (idx << 8),
                ..Default::default()
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = TraceGenConfig { minutes: 5, bins_per_minute: 100, ..Default::default() };
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a.minutes(), 5);
        assert_eq!(a.samples(0).len(), 100);
        assert_eq!(a.samples_mbps, b.samples_mbps);
    }

    #[test]
    fn means_hover_near_configured_level() {
        let cfg = TraceGenConfig { minutes: 30, ..Default::default() };
        let tr = synthesize(&cfg);
        let grand_mean: f64 = tr.minute_means().iter().sum::<f64>() / 30.0;
        assert!(
            (grand_mean - cfg.mean_mbps).abs() < 0.35 * cfg.mean_mbps,
            "grand mean {grand_mean} strays from {}",
            cfg.mean_mbps
        );
    }

    #[test]
    fn minute_drift_bounded() {
        let cfg = TraceGenConfig { minutes: 40, cv: 0.1, ..Default::default() };
        let tr = synthesize(&cfg);
        let means = tr.minute_means();
        for w in means.windows(2) {
            let rel = (w[1] - w[0]).abs() / w[0];
            // drift + reversion + sampling noise; must stay well under 25%.
            assert!(rel < 0.25, "minute mean jumped by {rel}");
        }
    }

    #[test]
    fn sigma_stable_across_minutes() {
        // The Figure-10 property: σ(t+1) within a factor ~2 of σ(t).
        let cfg = TraceGenConfig { minutes: 30, ..Default::default() };
        let tr = synthesize(&cfg);
        for m in 0..29 {
            let (a, b) = (tr.sigma(m), tr.sigma(m + 1));
            assert!(b / a < 2.5 && a / b < 2.5, "σ jumped {a} -> {b}");
        }
    }

    #[test]
    fn diurnal_cycle_shapes_minute_means() {
        // One full 40-minute cycle at 40% amplitude: the peak quarter of
        // the cycle must run well above the trough quarter, and amplitude
        // 0 must reproduce the stationary generator bit-for-bit.
        let base = TraceGenConfig { minutes: 40, cv: 0.05, ..Default::default() };
        let flat = synthesize(&base);
        let cycled = synthesize(&TraceGenConfig {
            diurnal_amplitude: 0.4,
            diurnal_period_minutes: 40,
            ..base.clone()
        });
        let means = cycled.minute_means();
        // sin peaks at minute 10 (2π·10/40 = π/2), troughs at minute 30.
        let peak: f64 = means[8..13].iter().sum::<f64>() / 5.0;
        let trough: f64 = means[28..33].iter().sum::<f64>() / 5.0;
        assert!(peak > 1.5 * trough, "diurnal swing too weak: {peak} vs {trough}");
        let again = synthesize(&TraceGenConfig { diurnal_amplitude: 0.0, ..base });
        assert_eq!(flat.samples_mbps, again.samples_mbps, "amplitude 0 is the old generator");
    }

    #[test]
    #[should_panic]
    fn diurnal_amplitude_must_stay_below_one() {
        synthesize(&TraceGenConfig { diurnal_amplitude: 1.0, ..Default::default() });
    }

    #[test]
    fn peak_at_least_mean() {
        let tr = synthesize(&TraceGenConfig { minutes: 3, ..Default::default() });
        for m in 0..3 {
            assert!(tr.peak(m) >= tr.minute_mean(m));
        }
    }

    #[test]
    fn caida_like_corpus_shape() {
        let set = caida_like_traces(2, 3, 9);
        assert_eq!(set.len(), 6);
        for tr in &set {
            assert_eq!(tr.minutes(), 60);
            let mean = tr.minute_mean(0);
            assert!(mean > 300.0 && mean < 9000.0);
        }
    }

    #[test]
    #[should_panic]
    fn ragged_trace_rejected() {
        AggregateTrace::from_samples(vec![1.0; 7], 3);
    }
}
