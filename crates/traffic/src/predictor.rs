//! The paper's Algorithm 1: predicting next minute's mean traffic level.
//!
//! The strategy is deliberately conservative: predictions ride 10% above the
//! last measured minute (the *hedge*, so an aggregate can grow by 10% before
//! exceeding its reservation) and decay by only 2% per minute when traffic
//! drops (so a transient dip doesn't strand the prediction low before a
//! rebound).

/// Streaming implementation of Algorithm 1.
///
/// ```
/// use lowlat_traffic::Predictor;
/// let mut p = Predictor::new(100.0);
/// // Traffic stays flat: predictions sit ~10% above it.
/// let pred = p.observe(100.0);
/// assert!((pred - 110.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Predictor {
    prev_prediction: f64,
    decay_multiplier: f64,
    fixed_hedge: f64,
}

impl Predictor {
    /// Default decay when the level drops (2% per minute).
    pub const DECAY: f64 = 0.98;
    /// Default hedge against growth (10%).
    pub const HEDGE: f64 = 1.1;

    /// Creates a predictor primed with one observed minute.
    pub fn new(first_minute_mean: f64) -> Self {
        Self::with_parameters(first_minute_mean, Self::DECAY, Self::HEDGE)
    }

    /// Creates a predictor with explicit decay/hedge parameters.
    ///
    /// # Panics
    /// Panics unless `0 < decay <= 1 <= hedge`.
    pub fn with_parameters(first_minute_mean: f64, decay: f64, hedge: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "bad decay {decay}");
        assert!(hedge >= 1.0, "bad hedge {hedge}");
        Predictor {
            prev_prediction: first_minute_mean.max(0.0) * hedge,
            decay_multiplier: decay,
            fixed_hedge: hedge,
        }
    }

    /// Feeds the mean level measured over the last minute and returns the
    /// prediction for the next minute. This is Algorithm 1 verbatim.
    pub fn observe(&mut self, prev_value: f64) -> f64 {
        let scaled_est = prev_value.max(0.0) * self.fixed_hedge;
        let next = if scaled_est > self.prev_prediction {
            scaled_est
        } else {
            let decay_prediction = self.prev_prediction * self.decay_multiplier;
            decay_prediction.max(scaled_est)
        };
        self.prev_prediction = next;
        next
    }

    /// The current prediction (for the upcoming minute).
    pub fn prediction(&self) -> f64 {
        self.prev_prediction
    }
}

/// Runs Algorithm 1 over a whole series of per-minute means, returning for
/// each minute `t >= 1` the ratio `measured(t) / predicted(t)` — the
/// quantity Figure 9 plots as a CDF.
pub fn prediction_ratios(minute_means: &[f64]) -> Vec<f64> {
    if minute_means.len() < 2 {
        return Vec::new();
    }
    let mut p = Predictor::new(minute_means[0]);
    let mut out = Vec::with_capacity(minute_means.len() - 1);
    for t in 1..minute_means.len() {
        let predicted = p.prediction();
        out.push(minute_means[t] / predicted);
        p.observe(minute_means[t]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_traffic_ratio_is_1_over_hedge() {
        let means = vec![100.0; 30];
        for r in prediction_ratios(&means) {
            assert!((r - 1.0 / 1.1).abs() < 1e-9, "got {r}");
        }
    }

    #[test]
    fn growth_tracked_with_hedge() {
        let mut p = Predictor::new(100.0);
        // Jump to 200: prediction follows immediately (200*1.1).
        let pred = p.observe(200.0);
        assert!((pred - 220.0).abs() < 1e-9);
    }

    #[test]
    fn decay_is_slow() {
        let mut p = Predictor::new(100.0); // prediction 110

        // Drop to 10: scaled_est = 11, decayed = 107.8 -> prediction decays.
        let pred = p.observe(10.0);
        assert!((pred - 107.8).abs() < 1e-9);
        // Stays near the old level for a while (conservative).
        let pred2 = p.observe(10.0);
        assert!((pred2 - 105.644).abs() < 1e-9);
    }

    #[test]
    fn decay_floors_at_scaled_estimate() {
        let mut p = Predictor::with_parameters(100.0, 0.5, 1.1);
        // Aggressive decay would undershoot; floor is prev_value * hedge.
        let pred = p.observe(90.0);
        assert!((pred - 99.0).abs() < 1e-9, "55 < 99 so floor wins, got {pred}");
    }

    #[test]
    fn ten_percent_growth_stays_within_prediction() {
        // The design goal: an aggregate may grow 10% per minute without
        // exceeding the reservation.
        let mut level = 100.0;
        let mut p = Predictor::new(level);
        for _ in 0..20 {
            let predicted = p.prediction();
            level *= 1.10;
            assert!(level <= predicted + 1e-9, "10% growth exceeded prediction");
            p.observe(level);
        }
    }

    #[test]
    fn ratios_empty_for_short_series() {
        assert!(prediction_ratios(&[5.0]).is_empty());
    }
}
