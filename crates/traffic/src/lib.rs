//! # lowlat-traffic
//!
//! Everything the paper needs about traffic *as a process over time* (§4-5):
//!
//! * [`trace`] — per-aggregate time series at two granularities (per-minute
//!   means and 100 ms samples), plus a synthetic generator standing in for
//!   the CAIDA Tier-1 backbone traces (which are not redistributable). The
//!   generator reproduces the two properties the paper measures: mean rates
//!   predictable minute-to-minute (Figure 9) and burst variance stable
//!   minute-to-minute (Figure 10).
//! * [`predictor`] — the paper's Algorithm 1: a conservative next-minute
//!   mean-rate predictor with a 10% growth hedge and 2% decay.
//! * [`fft`] / [`pmf`] — radix-2 FFT and probability-mass-function
//!   machinery: convolution of per-aggregate rate distributions in
//!   O(N log N), with the paper's 1024 quantization levels.
//! * [`multiplex`] — the two statistical-multiplexing admission tests of
//!   Figure 14: the temporal-correlation queueing test (B) and the
//!   convolution tail-probability test (C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod multiplex;
pub mod pmf;
pub mod predictor;
pub mod trace;

pub use multiplex::{MultiplexCheck, MultiplexConfig, Verdict};
pub use pmf::Pmf;
pub use predictor::Predictor;
pub use trace::{spread_seed, synthesize, AggregateTrace, TraceGenConfig};
