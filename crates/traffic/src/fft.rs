//! Iterative radix-2 complex FFT, sized for PMF convolution.
//!
//! The paper convolves per-aggregate bandwidth distributions per link and
//! notes the FFT route runs "in milliseconds" for tens of thousands of
//! aggregates at 1024 quantization levels — small transforms, so a simple
//! in-place Cooley-Tukey is the right amount of machinery.

/// A complex number; deliberately minimal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }

    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

/// In-place FFT (`inverse = false`) or unnormalized inverse FFT.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex { re: ang.cos(), im: ang.sin() };
        let mut i = 0;
        while i < n {
            let mut w = Complex { re: 1.0, im: 0.0 };
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Linear convolution of two non-negative real sequences via FFT.
/// Output length is `a.len() + b.len() - 1`.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex { re: x, im: 0.0 }).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex { re: x, im: 0.0 }).collect();
    fa.resize(n, Complex::ZERO);
    fb.resize(n, Complex::ZERO);
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = x.mul(*y);
    }
    fft_in_place(&mut fa, true);
    let scale = 1.0 / n as f64;
    // Convolving probability masses can produce tiny negative round-off.
    fa[..out_len].iter().map(|c| (c.re * scale).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }

    #[test]
    fn convolve_matches_naive() {
        let a = [0.25, 0.5, 0.25];
        let b = [0.1, 0.2, 0.3, 0.4];
        let fast = convolve(&a, &b);
        let slow = naive_convolve(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn convolution_of_pmfs_sums_to_one() {
        let a = [0.5, 0.5];
        let b = [0.2, 0.3, 0.5];
        let c = convolve(&a, &b);
        let total: f64 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_impulse() {
        let a = [1.0];
        let b = [0.3, 0.7];
        assert_eq!(convolve(&a, &b).len(), 2);
        let c = convolve(&a, &b);
        assert!((c[0] - 0.3).abs() < 1e-12 && (c[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fft_roundtrip() {
        let orig: Vec<Complex> =
            (0..16).map(|i| Complex { re: (i as f64).sin(), im: (i as f64 * 0.5).cos() }).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re / 16.0 - b.re).abs() < 1e-12);
            assert!((a.im / 16.0 - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<f64> = vec![1.0, 2.0, 0.5, -1.0, 0.0, 3.0, -0.5, 0.25];
        let mut data: Vec<Complex> = input.iter().map(|&x| Complex { re: x, im: 0.0 }).collect();
        fft_in_place(&mut data, false);
        let n = input.len();
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (t, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc = acc.add(Complex { re: x * ang.cos(), im: x * ang.sin() });
            }
            assert!((acc.re - data[k].re).abs() < 1e-9);
            assert!((acc.im - data[k].im).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let mut d = vec![Complex::ZERO; 12];
        fft_in_place(&mut d, false);
    }
}
