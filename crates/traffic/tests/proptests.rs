//! Property tests for the traffic machinery.

use proptest::prelude::*;

use lowlat_traffic::fft::convolve;
use lowlat_traffic::pmf::{convolve_group, Pmf};
use lowlat_traffic::predictor::{prediction_ratios, Predictor};
use lowlat_traffic::trace::{synthesize, TraceGenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The design goal of Algorithm 1: traffic growing at most 10% per
    /// minute never exceeds its prediction.
    #[test]
    fn predictor_covers_bounded_growth(
        start in 10.0f64..10_000.0,
        growths in proptest::collection::vec(0.0f64..0.10, 1..40),
    ) {
        let mut level = start;
        let mut p = Predictor::new(level);
        for g in growths {
            let predicted = p.prediction();
            level *= 1.0 + g;
            prop_assert!(level <= predicted * (1.0 + 1e-12),
                "level {level} exceeded prediction {predicted}");
            p.observe(level);
        }
    }

    /// Predictions never undershoot the hedge over the last observation and
    /// decay by at most 2% per minute.
    #[test]
    fn predictor_bounds(values in proptest::collection::vec(0.1f64..1e5, 2..50)) {
        let mut p = Predictor::new(values[0]);
        let mut prev = p.prediction();
        for &v in &values[1..] {
            let next = p.observe(v);
            prop_assert!(next >= v * 1.1 - 1e-9, "hedge floor violated");
            prop_assert!(next >= prev * 0.98 - 1e-9 || next >= v * 1.1 - 1e-9,
                "decayed too fast: {prev} -> {next}");
            prev = next;
        }
    }

    /// Ratios are finite and positive for positive traffic.
    #[test]
    fn prediction_ratios_sane(values in proptest::collection::vec(1.0f64..1e4, 2..60)) {
        for r in prediction_ratios(&values) {
            prop_assert!(r.is_finite() && r > 0.0);
            // Can never exceed 1/1.1 by more than the level jump allows:
            // measured/predicted <= measured/(1.1 * prev_measured * 0.98...).
        }
    }

    /// FFT convolution agrees with the naive quadratic convolution.
    #[test]
    fn fft_convolve_matches_naive(
        a in proptest::collection::vec(0.0f64..10.0, 1..40),
        b in proptest::collection::vec(0.0f64..10.0, 1..40),
    ) {
        let fast = convolve(&a, &b);
        let mut slow = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                slow[i + j] += x * y;
            }
        }
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-6 * (1.0 + s.abs()), "{f} vs {s}");
        }
    }

    /// P(X > t) is non-increasing in t, hits 0 beyond the support, and the
    /// group convolution's mean is the sum of the parts' means.
    #[test]
    fn pmf_tail_monotone_and_means_add(
        s1 in proptest::collection::vec(0.5f64..100.0, 5..50),
        s2 in proptest::collection::vec(0.5f64..100.0, 5..50),
    ) {
        let pmf = convolve_group(&[&s1, &s2], 256).expect("non-empty");
        let mut last = 1.0;
        for i in 0..20 {
            let t = i as f64 * 15.0;
            let p = pmf.prob_exceeds(t);
            prop_assert!(p <= last + 1e-12, "tail must fall");
            last = p;
        }
        prop_assert!(pmf.prob_exceeds(205.0) < 1e-9, "beyond max sum");
        let grid = pmf.bin_width();
        let m1 = Pmf::from_samples(&s1, grid, 256).mean();
        let m2 = Pmf::from_samples(&s2, grid, 256).mean();
        prop_assert!((pmf.mean() - (m1 + m2)).abs() < 1e-6 * (1.0 + m1 + m2));
    }

    /// Synthetic traces are shaped as configured and non-negative.
    #[test]
    fn trace_generator_shape(seed in any::<u64>(), minutes in 1usize..6) {
        let cfg = TraceGenConfig { minutes, bins_per_minute: 60, seed, ..Default::default() };
        let tr = synthesize(&cfg);
        prop_assert_eq!(tr.minutes(), minutes);
        for m in 0..minutes {
            prop_assert!(tr.minute_mean(m) > 0.0);
            prop_assert!(tr.peak(m) >= tr.minute_mean(m) - 1e-9);
            prop_assert!(tr.sigma(m) >= 0.0);
            for &s in tr.samples(m) {
                prop_assert!(s.is_finite() && s >= 0.0);
            }
        }
    }
}
