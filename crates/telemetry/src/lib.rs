//! # lowlat-telemetry
//!
//! Workspace-wide observability: hierarchical **spans** with thread-local
//! span stacks and monotonic timing, and a lock-striped **metrics registry**
//! of counters, gauges and fixed-bucket log-scale histograms — all behind a
//! single [`enabled`] gate that keeps the instrumented hot paths at their
//! uninstrumented cost when telemetry is off.
//!
//! The workspace is offline, so this crate is dependency-free by design
//! (std only), in the same spirit as the vendored stand-ins under `vendor/`.
//!
//! ## Model
//!
//! * **Spans** ([`span`], [`timed_span`]) are RAII guards: creation stamps a
//!   monotonic start, drop records a completed interval into a per-thread
//!   buffer that drains into a global trace. Each thread keeps a stack of
//!   open spans, so every recorded interval knows its parent — the chrome
//!   trace nests exactly as the call tree did. [`Span::finish_ms`] closes a
//!   span *and* hands back its duration, so a TSV column and the trace can
//!   be fed from one measurement instead of two `Instant` reads that would
//!   disagree.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]) live in a
//!   registry striped over 16 shards by a Fibonacci-mixed FNV hash of the
//!   metric name, so concurrent workers on different metrics rarely share a
//!   lock. Histograms use fixed log-scale buckets (8 per octave) and report
//!   p50/p90/p99 by nearest rank.
//! * **Sinks** ([`metrics_json`], [`metrics_tsv`], [`trace_json`],
//!   [`write_metrics`], [`write_trace`]) export a point-in-time snapshot as
//!   JSON or TSV, and the span trace in the `trace_event` format that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly.
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated `layer.thing[_unit]`: `lp.solves`,
//! `pathgrow.columns_grown`, `cache.repair.paths_regrown`,
//! `hier.query.fallback`, `timeline.minutes`. Every completed span `name`
//! additionally feeds the histogram `span.<name>_ms`, so the snapshot
//! carries the latency distribution of each phase without a trace viewer.
//!
//! ## The gate
//!
//! [`enabled`] is one relaxed atomic load. Every recording entry point
//! checks it first and returns before touching any lock, map or clock, so
//! an instrumented-but-disabled binary pays a branch per call site and
//! nothing else. [`timed_span`] is the one deliberate exception: it always
//! reads the clock, because its callers feed pre-existing wall-clock
//! columns (`decision_ms`, `repair_ms`) that must keep working with
//! telemetry off — exactly the cost of the `Instant::now()` pair it
//! replaced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod registry;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use export::{metrics_json, metrics_tsv, trace_json, write_metrics, write_trace};
pub use registry::{
    counter_add, gauge_set, observe, reset, snapshot, HistogramSummary, MetricsSnapshot,
};
pub use span::{span, timed_span, Span};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry is recording. One relaxed load — the fast path every
/// instrumentation site takes before doing anything else.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Enabling also pins the trace epoch (the zero
/// of every chrome-trace timestamp) if it is not already pinned.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// The monotonic instant all trace timestamps are relative to. Pinned at
/// the first [`set_enabled`]`(true)` (or first use, whichever comes first).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Mutex;

    /// Tests share the process-global registry and enable flag; the ones
    /// that touch them serialize on this lock.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }
}
