//! Lock-striped metrics registry: counters, gauges, log-scale histograms.
//!
//! The registry is a fixed array of shards, each a `Mutex<HashMap>`; a
//! metric's shard is chosen by a Fibonacci-mixed FNV-1a hash of its name,
//! so two workers updating *different* metrics almost never contend, while
//! updates to the *same* metric serialize on one short critical section —
//! the same striping recipe as `PathCache`'s shard map.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

const SHARD_COUNT: usize = 16;

/// Histogram bucket resolution: 8 buckets per power of two keeps the
/// worst-case quantile error under `2^(1/8) - 1` ≈ 9%.
const BUCKETS_PER_OCTAVE: i64 = 8;
/// Smallest resolvable value is `2^MIN_EXP`; anything at or below lands in
/// the underflow bucket.
const MIN_EXP: i64 = -16;
/// Largest resolvable value is `2^MAX_EXP`; anything above lands in the
/// overflow bucket, whose representative is `2^MAX_EXP` itself.
const MAX_EXP: i64 = 32;
const INTERIOR_BUCKETS: usize = ((MAX_EXP - MIN_EXP) * BUCKETS_PER_OCTAVE) as usize;

/// Fixed-bucket log-scale histogram with exact count/sum/min/max.
struct Histogram {
    /// `[underflow, interior..., overflow]`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: vec![0; INTERIOR_BUCKETS + 2],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index of `value`: 0 is underflow, `1..=INTERIOR_BUCKETS` are
    /// the log-scale interior, the last slot is overflow.
    fn bucket_of(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0;
        }
        let sub = ((value.log2() - MIN_EXP as f64) * BUCKETS_PER_OCTAVE as f64).floor() as i64;
        if sub < 0 {
            0
        } else if sub >= INTERIOR_BUCKETS as i64 {
            INTERIOR_BUCKETS + 1
        } else {
            1 + sub as usize
        }
    }

    /// Lower bound of the bucket — the value quantiles report. Powers of
    /// two are bucket boundaries, so they round-trip exactly.
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            0.0
        } else if bucket > INTERIOR_BUCKETS {
            2f64.powf(MAX_EXP as f64)
        } else {
            2f64.powf(MIN_EXP as f64 + (bucket as f64 - 1.0) / BUCKETS_PER_OCTAVE as f64)
        }
    }

    fn observe(&mut self, value: f64) {
        self.counts[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Nearest-rank quantile over the bucketed samples: the representative
    /// of the bucket holding the `ceil(q * count)`-th smallest sample.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::representative(i);
            }
        }
        Histogram::representative(INTERIOR_BUCKETS + 1)
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

fn shards() -> &'static [Mutex<HashMap<String, Metric>>] {
    static SHARDS: OnceLock<Vec<Mutex<HashMap<String, Metric>>>> = OnceLock::new();
    SHARDS.get_or_init(|| (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect())
}

/// FNV-1a then a Fibonacci mix; the top bits select the shard.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (SHARD_COUNT - 1)
}

fn with_metric(name: &str, make: impl FnOnce() -> Metric, apply: impl FnOnce(&mut Metric)) {
    let mut map = shards()[shard_of(name)].lock().expect("telemetry shard poisoned");
    match map.get_mut(name) {
        Some(metric) => apply(metric),
        None => {
            let mut metric = make();
            apply(&mut metric);
            map.insert(name.to_string(), metric);
        }
    }
}

/// Adds `delta` to counter `name`. No-op while telemetry is disabled, and
/// on a name already registered as a different kind.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::Counter(0),
        |m| {
            if let Metric::Counter(v) = m {
                *v += delta;
            }
        },
    );
}

/// Sets gauge `name` to `value` (last write wins). No-op while disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::Gauge(0.0),
        |m| {
            if let Metric::Gauge(v) = m {
                *v = value;
            }
        },
    );
}

/// Records `value` into histogram `name`. No-op while disabled.
pub fn observe(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::Histogram(Histogram::new()),
        |m| {
            if let Metric::Histogram(h) = m {
                h.observe(value);
            }
        },
    );
}

/// Quantile summary of one histogram, as exported by [`snapshot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (for means).
    pub sum: f64,
    /// Exact smallest sample.
    pub min: f64,
    /// Exact largest sample.
    pub max: f64,
    /// Nearest-rank median (bucket lower bound).
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent — convenient for assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Copies the registry out. Works whether or not telemetry is enabled (it
/// reports whatever has been recorded so far).
pub fn snapshot() -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for shard in shards() {
        let map = shard.lock().expect("telemetry shard poisoned");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(v) => {
                    out.counters.insert(name.clone(), *v);
                }
                Metric::Gauge(v) => {
                    out.gauges.insert(name.clone(), *v);
                }
                Metric::Histogram(h) => {
                    out.histograms.insert(name.clone(), h.summary());
                }
            }
        }
    }
    out
}

/// Clears every metric and the recorded trace. Intended for tests and for
/// bins that emit one snapshot per run.
pub fn reset() {
    for shard in shards() {
        shard.lock().expect("telemetry shard poisoned").clear();
    }
    crate::span::clear_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(samples: &[f64], q: f64) -> f64 {
        // Reference nearest-rank on the raw samples.
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    #[test]
    fn power_of_two_samples_quantile_exactly() {
        // Powers of two are bucket lower bounds, so the bucketed
        // nearest-rank agrees exactly with the raw nearest-rank.
        let mut h = Histogram::new();
        let samples = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
        for &s in &samples {
            h.observe(s);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), exact(&samples, q), "q={q}");
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 512.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.observe(4.0);
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 4.0, "q={q}");
        }
    }

    #[test]
    fn all_equal_samples_report_their_bucket_floor() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(5.0);
        }
        // 5.0 falls in the bucket whose lower bound is 2^2.25.
        let expect = 2f64.powf(2.25);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), expect, "q={q}");
        }
        assert_eq!(h.max, 5.0, "min/max stay exact");
        assert_eq!(h.min, 5.0);
    }

    #[test]
    fn overflow_and_underflow_buckets() {
        let mut h = Histogram::new();
        h.observe(1e300); // far beyond 2^32
        assert_eq!(h.quantile(0.5), 2f64.powf(MAX_EXP as f64), "overflow clamps");
        assert_eq!(h.max, 1e300, "exact max survives the clamp");

        let mut low = Histogram::new();
        low.observe(0.0);
        low.observe(-3.0);
        low.observe(1e-30);
        assert_eq!(low.quantile(0.9), 0.0, "underflow reports 0");
    }

    #[test]
    fn nearest_rank_is_lower_of_even_split() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(1024.0);
        // rank = ceil(0.5 * 2) = 1 -> the smaller sample, per nearest-rank.
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.51), 1024.0);
    }

    #[test]
    fn registry_kinds_and_snapshot() {
        let _g = crate::testutil::lock();
        reset();
        crate::set_enabled(true);
        counter_add("test.reg.count", 2);
        counter_add("test.reg.count", 3);
        gauge_set("test.reg.gauge", 1.5);
        gauge_set("test.reg.gauge", 2.5);
        observe("test.reg.hist", 8.0);
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.counter("test.reg.count"), 5);
        assert_eq!(snap.gauges["test.reg.gauge"], 2.5);
        assert_eq!(snap.histograms["test.reg.hist"].p50, 8.0);
        assert_eq!(snap.counter("test.reg.absent"), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = crate::testutil::lock();
        reset();
        assert!(!crate::enabled());
        counter_add("test.off.count", 7);
        observe("test.off.hist", 1.0);
        let snap = snapshot();
        assert_eq!(snap.counter("test.off.count"), 0);
        assert!(!snap.histograms.contains_key("test.off.hist"));
    }

    #[test]
    fn concurrent_hammering_is_deterministic() {
        let _g = crate::testutil::lock();
        reset();
        crate::set_enabled(true);
        const WORKERS: usize = 8;
        const PER_WORKER: usize = 1000;
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                s.spawn(move || {
                    for i in 0..PER_WORKER {
                        counter_add("test.conc.count", 1);
                        // Everyone also updates a per-worker counter that
                        // hashes to assorted shards.
                        counter_add(&format!("test.conc.worker{w}"), 1);
                        observe("test.conc.hist", (1 + i % 4) as f64);
                    }
                });
            }
        });
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.counter("test.conc.count"), (WORKERS * PER_WORKER) as u64);
        for w in 0..WORKERS {
            assert_eq!(snap.counter(&format!("test.conc.worker{w}")), PER_WORKER as u64);
        }
        let h = &snap.histograms["test.conc.hist"];
        assert_eq!(h.count, (WORKERS * PER_WORKER) as u64);
        // Samples cycle 1,2,3,4 -> sum is exactly workers * per_worker * 2.5.
        assert_eq!(h.sum, WORKERS as f64 * PER_WORKER as f64 * 2.5);
        assert_eq!(h.p50, 2.0);
        assert_eq!(h.max, 4.0);
    }
}
