//! Hierarchical spans: RAII guards over monotonic intervals, buffered per
//! thread and drained into one global trace.
//!
//! Each thread keeps a stack of the spans currently open on it, so a
//! completed interval records which span encloses it — Perfetto nests by
//! time containment per track, and the recorded parent makes the nesting
//! auditable without a viewer. Completed events accumulate in a small
//! per-thread buffer that flushes into the global trace when it fills.
//! Each buffer is also registered in a global list, and the export path
//! drains *every* registered buffer: `std::thread::scope` signals
//! completion when the worker's closure returns, **before** its TLS
//! destructors run, so an exit-time-only flush would race the exporter
//! and drop the tail of the trace.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span, in chrome-trace "complete event" terms.
#[derive(Clone, Debug)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub cat: &'static str,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u32,
    /// Innermost span still open on this thread when this one closed.
    pub parent: Option<&'static str>,
}

/// Trace-size backstop: a runaway sweep stops growing the trace here and
/// counts what it dropped instead (`telemetry.trace_dropped`).
const MAX_TRACE_EVENTS: usize = 1 << 20;
/// Thread-local events buffered before taking the global lock.
const FLUSH_AT: usize = 128;

static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
/// Every live thread's event buffer, so the exporter can drain buffers the
/// owning thread has not flushed (or will never flush: a thread parked in
/// a pool, or one whose TLS destructors have not run yet).
static BUFFERS: Mutex<Vec<Arc<Mutex<Vec<TraceEvent>>>>> = Mutex::new(Vec::new());

/// Moves `buf`'s contents into the global trace, honoring the size cap.
fn drain_into_trace(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let mut trace = TRACE.lock().expect("trace poisoned");
    let room = MAX_TRACE_EVENTS.saturating_sub(trace.len());
    let take = room.min(buf.len());
    let dropped = buf.len() - take;
    trace.extend(buf.drain(..take));
    drop(trace);
    buf.clear();
    if dropped > 0 {
        crate::counter_add("telemetry.trace_dropped", dropped as u64);
    }
}

struct ThreadState {
    tid: u32,
    stack: Vec<&'static str>,
    buf: Arc<Mutex<Vec<TraceEvent>>>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new({
        let buf = Arc::new(Mutex::new(Vec::new()));
        BUFFERS.lock().expect("buffers poisoned").push(Arc::clone(&buf));
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            buf,
        }
    });
}

/// An open span. Closes (and records, when telemetry is enabled) on drop;
/// [`Span::finish_ms`] closes it early and returns the duration.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start: Option<Instant>,
    /// Whether this span was pushed on the thread-local stack (i.e. it was
    /// created with telemetry enabled and must record on close).
    tracked: bool,
}

/// Opens a span. Free while telemetry is disabled: no clock read, no
/// thread-local touch — just the gate check.
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !crate::enabled() {
        return Span { name, cat, start: None, tracked: false };
    }
    let start = Instant::now();
    push(name);
    Span { name, cat, start: Some(start), tracked: true }
}

/// Opens a span that **always** measures, recording only when telemetry is
/// enabled. For call sites whose duration feeds an existing output column
/// (`decision_ms`, `repair_ms`, …): the column keeps working with
/// telemetry off, at exactly the cost of the `Instant` pair it replaced.
pub fn timed_span(name: &'static str, cat: &'static str) -> Span {
    let tracked = crate::enabled();
    let start = Instant::now();
    if tracked {
        push(name);
    }
    Span { name, cat, start: Some(start), tracked }
}

fn push(name: &'static str) {
    let _ = THREAD.try_with(|t| t.borrow_mut().stack.push(name));
}

impl Span {
    /// Milliseconds since the span opened (0 for a gate-skipped [`span`]).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e3)
    }

    /// Closes the span now and returns its duration in milliseconds — the
    /// single measurement both the trace and the caller's column read.
    pub fn finish_ms(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let Some(start) = self.start.take() else {
            return 0.0;
        };
        let dur = start.elapsed();
        let ms = dur.as_secs_f64() * 1e3;
        if !self.tracked {
            return ms;
        }
        self.tracked = false;
        let ts_us =
            start.saturating_duration_since(crate::epoch()).as_micros().min(u64::MAX as u128)
                as u64;
        let dur_us = dur.as_micros().min(u64::MAX as u128) as u64;
        let _ = THREAD.try_with(|t| {
            let mut t = t.borrow_mut();
            // Pop self; spans are strictly LIFO per thread, but a guard
            // leaked across threads should not corrupt the stack.
            if t.stack.last() == Some(&self.name) {
                t.stack.pop();
            }
            let parent = t.stack.last().copied();
            let tid = t.tid;
            let mut buf = t.buf.lock().expect("thread buffer poisoned");
            buf.push(TraceEvent { name: self.name, cat: self.cat, ts_us, dur_us, tid, parent });
            if buf.len() >= FLUSH_AT {
                drain_into_trace(&mut buf);
            }
        });
        if crate::enabled() {
            crate::counter_add("telemetry.spans", 1);
            crate::observe(&format!("span.{}_ms", self.name), ms);
        }
        ms
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Drains every registered thread buffer and copies the global trace out.
/// Buffers whose owning thread has exited (the list holds the only
/// reference left) are dropped from the list once drained.
pub(crate) fn trace_events() -> Vec<TraceEvent> {
    let mut buffers = BUFFERS.lock().expect("buffers poisoned");
    buffers.retain(|buf| {
        drain_into_trace(&mut buf.lock().expect("thread buffer poisoned"));
        Arc::strong_count(buf) > 1
    });
    drop(buffers);
    TRACE.lock().expect("trace poisoned").clone()
}

/// Drops everything recorded so far (used by [`crate::reset`]).
pub(crate) fn clear_trace() {
    let mut buffers = BUFFERS.lock().expect("buffers poisoned");
    buffers.retain(|buf| {
        buf.lock().expect("thread buffer poisoned").clear();
        Arc::strong_count(buf) > 1
    });
    drop(buffers);
    TRACE.lock().expect("trace poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let _g = crate::testutil::lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _root = span("test.root", "test");
            {
                let _child = span("test.child", "test");
            }
        }
        crate::set_enabled(false);
        let events = trace_events();
        let child = events.iter().find(|e| e.name == "test.child").expect("child recorded");
        let root = events.iter().find(|e| e.name == "test.root").expect("root recorded");
        assert_eq!(child.parent, Some("test.root"));
        assert_eq!(root.parent, None);
        assert_eq!(child.tid, root.tid);
        // The child interval sits inside the root interval.
        assert!(child.ts_us >= root.ts_us);
        assert!(child.ts_us + child.dur_us <= root.ts_us + root.dur_us + 1);
        crate::reset();
    }

    #[test]
    fn disabled_spans_record_nothing_but_timed_spans_still_measure() {
        let _g = crate::testutil::lock();
        crate::reset();
        assert!(!crate::enabled());
        {
            let _s = span("test.off", "test");
        }
        let t = timed_span("test.off.timed", "test");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ms = t.finish_ms();
        assert!(ms >= 1.0, "timed span measures while disabled (got {ms})");
        assert!(trace_events().is_empty(), "nothing recorded while disabled");
        let snap = crate::snapshot();
        assert_eq!(snap.counter("telemetry.spans"), 0);
    }

    #[test]
    fn worker_thread_buffers_drain_on_export() {
        // `thread::scope` signals completion before the worker's TLS
        // destructors run, so the exporter cannot rely on exit-time
        // flushing: it must drain the registered buffers itself. The
        // 3×FLUSH_AT/2 count leaves a partial tail buffer on each worker —
        // exactly the events an exit-time-only flush would race away.
        let _g = crate::testutil::lock();
        crate::reset();
        crate::set_enabled(true);
        let per_worker = 3 * FLUSH_AT / 2;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..per_worker {
                        let _w = span("test.worker", "test");
                    }
                });
            }
        });
        crate::set_enabled(false);
        let events = trace_events();
        let workers = events.iter().filter(|e| e.name == "test.worker").count();
        assert_eq!(workers, 4 * per_worker, "every scoped worker's buffer drained");
        crate::reset();
    }
}
