//! Export sinks: the metrics snapshot as JSON or TSV, and the span trace
//! in chrome `trace_event` format (loadable in `chrome://tracing` and
//! Perfetto). Hand-rolled serialization, matching the workspace's
//! no-serde idiom (`topo_ingest`, `bench_report`).

use crate::registry::MetricsSnapshot;

/// Escapes a string for a JSON literal.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (NaN/inf are not valid JSON; clamp to 0).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The current metrics snapshot as pretty-printed JSON:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, p50, p90, p99}}}`.
pub fn metrics_json() -> String {
    let snap = crate::snapshot();
    metrics_json_of(&snap)
}

pub(crate) fn metrics_json_of(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    let counters: Vec<String> =
        snap.counters.iter().map(|(k, v)| format!("\n    {}: {v}", jstr(k))).collect();
    out.push_str(&counters.join(","));
    if !counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    let gauges: Vec<String> =
        snap.gauges.iter().map(|(k, v)| format!("\n    {}: {}", jstr(k), jnum(*v))).collect();
    out.push_str(&gauges.join(","));
    if !gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                jstr(k),
                h.count,
                jnum(h.sum),
                jnum(h.min),
                jnum(h.max),
                jnum(h.p50),
                jnum(h.p90),
                jnum(h.p99),
            )
        })
        .collect();
    out.push_str(&hists.join(","));
    if !hists.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// The current metrics snapshot as TSV: one row per metric,
/// `kind name value…` (histograms carry count/sum/min/max/p50/p90/p99).
pub fn metrics_tsv() -> String {
    let snap = crate::snapshot();
    let mut out = String::from("kind\tname\tcount\tsum\tmin\tmax\tp50\tp90\tp99\n");
    for (k, v) in &snap.counters {
        out.push_str(&format!("counter\t{k}\t{v}\t\t\t\t\t\t\n"));
    }
    for (k, v) in &snap.gauges {
        out.push_str(&format!("gauge\t{k}\t\t{v}\t\t\t\t\t\n"));
    }
    for (k, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram\t{k}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
        ));
    }
    out
}

/// The recorded span trace as a chrome `trace_event` JSON document: one
/// `"ph": "X"` complete event per span, microsecond timestamps relative to
/// the trace epoch, one `tid` per OS thread. Load it at
/// <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn trace_json() -> String {
    let events = crate::span::trace_events();
    let mut out = String::from("{\"traceEvents\": [\n");
    let rows: Vec<String> = events
        .iter()
        .map(|e| {
            let args = match e.parent {
                Some(p) => format!(", \"args\": {{\"parent\": {}}}", jstr(p)),
                None => String::new(),
            };
            format!(
                "  {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}{args}}}",
                jstr(e.name),
                jstr(e.cat),
                e.ts_us,
                e.dur_us,
                e.tid,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Writes the metrics snapshot to `path`: TSV when the path ends in
/// `.tsv`, JSON otherwise.
pub fn write_metrics(path: &str) -> std::io::Result<()> {
    let body = if path.ends_with(".tsv") { metrics_tsv() } else { metrics_json() };
    std::fs::write(path, body)
}

/// Writes the chrome trace to `path`.
pub fn write_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON well-formedness check: balanced braces/brackets outside
    /// strings, no trailing commas before a closer.
    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        let mut last_significant = ' ';
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(last_significant, ',', "trailing comma before closer");
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced closers");
                }
                _ => {}
            }
            if !c.is_whitespace() {
                last_significant = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn sinks_emit_wellformed_output() {
        let _g = crate::testutil::lock();
        crate::reset();
        crate::set_enabled(true);
        crate::counter_add("test.export.count", 3);
        crate::gauge_set("test.export.gauge", 0.25);
        crate::observe("test.export.hist_ms", 2.0);
        {
            let _s = crate::span("test.export.span", "test");
        }
        let json = metrics_json();
        let trace = trace_json();
        let tsv = metrics_tsv();
        crate::set_enabled(false);
        crate::reset();

        assert_balanced_json(&json);
        assert_balanced_json(&trace);
        assert!(json.contains("\"test.export.count\": 3"));
        assert!(json.contains("\"test.export.gauge\": 0.25"));
        assert!(json.contains("\"test.export.hist_ms\""));
        assert!(json.contains("\"span.test.export.span_ms\""));
        assert!(trace.contains("\"name\": \"test.export.span\""));
        assert!(trace.contains("\"ph\": \"X\""));
        let hist_row = tsv
            .lines()
            .find(|l| l.starts_with("histogram\ttest.export.hist_ms"))
            .expect("histogram row");
        assert_eq!(hist_row.split('\t').count(), 9, "tsv rows are column-aligned");
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        let _g = crate::testutil::lock();
        crate::reset();
        assert_balanced_json(&metrics_json());
        assert_balanced_json(&trace_json());
    }
}
