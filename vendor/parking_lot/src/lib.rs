//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly (no `Result`), and a poisoned lock is simply
//! recovered — matching `parking_lot`'s no-poisoning semantics.

use std::sync;

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held elsewhere");
        drop(held);
        *m.try_lock().expect("free now") += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
