//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the thin slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64: statistically solid for simulation
//! workloads, trivially seedable, and — most importantly here — stable
//! across platforms and releases, so every seeded experiment in the
//! workspace is bit-reproducible forever. (Real `rand`'s `StdRng`
//! explicitly does *not* promise cross-version stability.)

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` used here.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.next_f64() < p
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range in gen_range");
        lo + (hi - lo) * rng.next_f64()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
