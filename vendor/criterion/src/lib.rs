//! Offline stand-in for `criterion`.
//!
//! Implements the API slice the workspace's benches use — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — with a plain wall-clock
//! measurement loop instead of criterion's statistical machinery. Median
//! per-iteration time is reported on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` over `sample_size` timed runs (after one warmup).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    println!(
        "{id:<48} median {median:>12?}   ({} samples, total {total:?})",
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` invokes the target with `--bench`; tolerate and
            // ignore harness flags so listing/filtering runs don't fail.
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}
