//! Case execution, failure reporting, and regression-seed persistence.

use std::fmt;
use std::fs;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is skipped, not failed.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to give every test a distinct deterministic seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem =
        std::path::Path::new(source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
    PathBuf::from(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
}

fn load_regression_seeds(manifest_dir: &str, source_file: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(regression_path(manifest_dir, source_file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next()?;
            let seed = u64::from_str_radix(parts.next()?.trim_start_matches("0x"), 16).ok()?;
            (name == test_name).then_some(seed)
        })
        .collect()
}

fn save_regression_seed(manifest_dir: &str, source_file: &str, test_name: &str, seed: u64) {
    let path = regression_path(manifest_dir, source_file);
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let line = format!("{test_name} {seed:016x}");
    if fs::read_to_string(&path).is_ok_and(|t| t.lines().any(|l| l.trim() == line)) {
        return;
    }
    // Several proptests in one file fail in parallel threads when a commit
    // breaks shared machinery; append (O_APPEND is atomic per write) so one
    // test's seed cannot clobber another's, as a read-modify-write would.
    let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    let header = if file.metadata().map(|m| m.len()).unwrap_or(0) == 0 {
        "# Seeds found to fail by the proptest stand-in. Kept under version\n\
         # control so failures stay reproducible. Format: <test_name> <seed_hex>\n"
    } else {
        ""
    };
    use std::io::Write;
    let _ = writeln!(file, "{header}{line}");
}

/// Runs `case` until `config.cases` cases pass, replaying any recorded
/// regression seeds first. Panics (with the seed) on the first failure.
pub fn run_cases(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let mut run_one = |seed: u64, origin: &str| {
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => Ok(true),
            Err(TestCaseError::Reject(_)) => Ok(false),
            Err(TestCaseError::Fail(reason)) => Err((seed, origin.to_string(), reason)),
        }
    };

    let mut failure = None;
    'outer: {
        for seed in load_regression_seeds(manifest_dir, source_file, test_name) {
            if let Err(f) = run_one(seed, "regression") {
                failure = Some(f);
                break 'outer;
            }
        }
        let base = fnv1a(test_name.as_bytes()) ^ fnv1a(source_file.as_bytes());
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while passed < config.cases {
            let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            index += 1;
            match run_one(seed, "generated") {
                Ok(true) => passed += 1,
                Ok(false) => {
                    rejected += 1;
                    assert!(
                        rejected < config.cases.saturating_mul(64).max(1024),
                        "{test_name}: too many rejected cases ({rejected}); \
                         prop_assume! conditions are unsatisfiable"
                    );
                }
                Err(f) => {
                    failure = Some(f);
                    break 'outer;
                }
            }
        }
    }

    if let Some((seed, origin, reason)) = failure {
        save_regression_seed(manifest_dir, source_file, test_name, seed);
        panic!(
            "proptest {test_name} failed ({origin} seed {seed:#018x}, \
             recorded in proptest-regressions/): {reason}"
        );
    }
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (any::<u32>(), any::<u32>())) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(
                &config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__proptest_rng| -> $crate::test_runner::TestCaseResult {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_tests! { $config; $($rest)* }
    };
}

/// Asserts within a proptest body; failure fails the case (not the process)
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), left, right
        );
    }};
}

/// Skips the current case (without failing) when its precondition is unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
