//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`, multiple
//!   `#[test]` functions, `pat in strategy` arguments, and bodies that may
//!   `return Ok(())` / `Err(TestCaseError::..)` early);
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`], [`strategy::Just`], `any::<T>()`, numeric-range
//!   strategies, tuple strategies, [`collection::vec`], and the
//!   [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] combinators.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** On failure the harness reports the failing case's
//!   seed instead of a minimized input.
//! - **Deterministic seeds.** Case seeds derive from the test name and the
//!   case index, so a red test is red for everyone, every run.
//! - **Regression replay.** Failing seeds are appended to
//!   `proptest-regressions/<file>.txt` (same spirit as proptest's `cc`
//!   files, simpler format: `<test_name> <seed_hex>`), and replayed first
//!   on subsequent runs.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::AnyStrategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary() -> AnyStrategy<Self>;
    }

    /// Strategy producing arbitrary values of `T` (full range for the
    /// numeric types below).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}
