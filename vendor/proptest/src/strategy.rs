//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG to a value. Combinators
//! mirror proptest's: [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//! tuples, ranges, [`Just`], [`Union`] (behind [`prop_oneof!`]), and
//! [`VecStrategy`] (behind [`crate::collection::vec`]).

use rand::rngs::StdRng;
use rand::Rng;

use crate::arbitrary::Arbitrary;

/// A recipe for generating values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Uniform pick of one strategy out of several (same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

/// Full-range "any value" strategy for the numeric types wired up below.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> AnyStrategy<bool> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Length specification for [`crate::collection::vec`]: a fixed size or a
/// half-open / inclusive range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
